//! Graceful-shutdown ordering regression tests: `Server::shutdown` must
//! drain the group-commit pipeline (via the engine's drop order), stop
//! the background daemons, and close listeners — and no commit the
//! server *acknowledged* over the wire may be lost.

use std::sync::Arc;
use std::time::Duration;

use instant_common::MockClock;
use instant_core::query::HierarchyRegistry;
use instant_core::{Db, DbConfig};
use instant_server::{open_or_recover, Client, Server, ServerConfig};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "instantdb-srv-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_acknowledged_commit_lost_on_shutdown() {
    let dir = scratch("shutdown");
    let base = dir.join("db");
    let clock = MockClock::new();
    let reg = HierarchyRegistry::new();
    // Background checkpointer + degradation daemon armed: shutdown must
    // stop both *before* the engine drops, and their races with the
    // final commits must not lose any acknowledged insert.
    let cfg = DbConfig {
        path: Some(base.clone()),
        checkpoint_every: Some(Duration::from_millis(2)),
        ..DbConfig::default()
    };
    let db = open_or_recover(cfg, clock.shared(), &reg).unwrap();
    let server = Server::start(
        db,
        reg.clone(),
        ServerConfig {
            degrade_every: Some(Duration::from_millis(2)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    const N: usize = 40;
    let mut client = Client::connect(&addr).unwrap();
    client
        .query("CREATE TABLE kv (k INT INDEXED, v TEXT)")
        .unwrap();
    for i in 0..N {
        // Every one of these returned over the wire = acknowledged.
        client
            .query(&format!("INSERT INTO kv VALUES ({i}, 'payload-{i}')"))
            .unwrap();
    }
    // No Close frame, no checkpoint call: the connection is live and the
    // last commits may still sit in WAL segments only.
    server.shutdown().unwrap();

    // The client notices on its next use (and would reconnect if a
    // server came back; none does here).
    assert!(client.query("SELECT k FROM kv").is_err());

    // Reopen the data directory cold: every acknowledged commit must be
    // there, schemas rebuilt from the DDL journal.
    let recovered = open_or_recover(
        DbConfig {
            path: Some(base.clone()),
            ..DbConfig::default()
        },
        clock.shared(),
        &reg,
    )
    .unwrap();
    let table = recovered.catalog().get("kv").unwrap();
    assert_eq!(table.live_count().unwrap(), N, "acknowledged commits lost");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_executes_admitted_queries_before_stopping_workers() {
    // Queries already admitted to the worker queue when shutdown begins
    // are executed, not dropped (their replies may fail — the client is
    // being disconnected — but the engine work completes).
    let dir = scratch("shutdown-drain");
    let base = dir.join("db");
    let clock = MockClock::new();
    let reg = HierarchyRegistry::new();
    let db = open_or_recover(
        DbConfig {
            path: Some(base.clone()),
            ..DbConfig::default()
        },
        clock.shared(),
        &reg,
    )
    .unwrap();
    let server = Server::start(db.clone(), reg.clone(), ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client
        .query("CREATE TABLE kv (k INT INDEXED, v TEXT)")
        .unwrap();
    client.query("INSERT INTO kv VALUES (1, 'one')").unwrap();
    server.shutdown().unwrap();
    assert_eq!(
        db.catalog().get("kv").unwrap().live_count().unwrap(),
        1,
        "inserted row present on the still-held engine handle"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_with_idle_connections_and_drop_are_clean() {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    let server = Server::start(db, HierarchyRegistry::new(), ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let _idle1 = Client::connect(&addr).unwrap();
    let _idle2 = Client::connect(&addr).unwrap();
    server.shutdown().unwrap(); // must not hang on the idle readers

    // And plain Drop (no explicit shutdown) must tear down cleanly too.
    let clock = MockClock::new();
    let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    let server = Server::start(db, HierarchyRegistry::new(), ServerConfig::default()).unwrap();
    let _idle = Client::connect(server.local_addr().to_string()).unwrap();
    drop(server);
}
