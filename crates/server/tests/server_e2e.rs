//! End-to-end tests over real TCP: round trips, session state across
//! frames, admission control (both gates), and client reconnect with
//! purpose replay.

use std::sync::Arc;
use std::time::{Duration, Instant};

use instant_common::{Error, MockClock, Value};
use instant_core::query::{HierarchyRegistry, QueryOutput};
use instant_core::{Db, DbConfig, GroupCommitConfig};
use instant_lcp::gtree::location_tree_fig1;
use instant_server::protocol::{self, Frame};
use instant_server::{open_or_recover, Client, Server, ServerConfig};

fn registry() -> HierarchyRegistry {
    let h = HierarchyRegistry::new();
    h.register("location_gt", Arc::new(location_tree_fig1()));
    h
}

fn ephemeral_server(cfg: ServerConfig) -> Server {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    Server::start(db, registry(), cfg).unwrap()
}

const CREATE_PERSON: &str = "CREATE TABLE person (id INT INDEXED, \
     location TEXT DEGRADE USING location_gt \
     LCP 'address:1h -> city:1d -> region:1mo -> country:1mo' INDEXED)";

#[test]
fn wire_round_trip_and_session_state() {
    let server = ephemeral_server(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    client.ping().unwrap();
    assert!(matches!(
        client.query(CREATE_PERSON).unwrap(),
        QueryOutput::TableCreated(n) if n == "person"
    ));
    assert_eq!(
        client
            .query("INSERT INTO person VALUES (1, '4 rue Jussieu')")
            .unwrap(),
        QueryOutput::Inserted(1)
    );
    assert_eq!(
        client
            .query("INSERT INTO person VALUES (2, 'Rue de la Paix')")
            .unwrap(),
        QueryOutput::Inserted(1)
    );
    let rows = client.query("SELECT id FROM person").unwrap().rows();
    assert_eq!(rows.rows.len(), 2);

    // Session state persists across frames: the purpose declared here
    // governs the SELECT on the *same connection* below.
    client
        .query("DECLARE PURPOSE STAT SET ACCURACY LEVEL CITY FOR LOCATION")
        .unwrap();
    let rows = client.query("SELECT location FROM person").unwrap().rows();
    let mut cities: Vec<Value> = rows.rows.into_iter().map(|mut r| r.remove(0)).collect();
    cities.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
    assert_eq!(
        cities,
        vec![Value::Str("Lyon".into()), Value::Str("Paris".into())]
    );

    // A *different* connection has its own session: no purpose there, so
    // the fresh tuples come back at full accuracy.
    let mut other = Client::connect(&addr).unwrap();
    let rows = other
        .query("SELECT location FROM person WHERE id = 1")
        .unwrap()
        .rows();
    assert_eq!(rows.rows[0][0], Value::Str("4 rue Jussieu".into()));
    other.close().unwrap();

    let stats = server.stats();
    assert!(stats.connections_accepted >= 2, "{stats:?}");
    assert!(stats.queries >= 6, "{stats:?}");
    assert!(stats.frames > stats.queries, "pings/closes counted too");
    assert_eq!(stats.query_errors, 0, "{stats:?}");
    assert_eq!(stats.total_shed(), 0, "{stats:?}");
    client.close().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn show_stats_over_live_tcp_returns_full_snapshot() {
    // A 1ns threshold (clamped to 1us by the engine) makes every wire
    // query "slow", so the slow-query log is exercised end to end too.
    let server = ephemeral_server(ServerConfig {
        slow_query: Some(Duration::from_nanos(1)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    client.query(CREATE_PERSON).unwrap();
    client
        .query("INSERT INTO person VALUES (1, '4 rue Jussieu')")
        .unwrap();
    client
        .query("DECLARE PURPOSE STAT SET ACCURACY LEVEL CITY FOR LOCATION")
        .unwrap();
    client.query("SELECT location FROM person").unwrap();

    let QueryOutput::Stats(snap) = client.query("SHOW STATS").unwrap() else {
        panic!("SHOW STATS must answer with a stats snapshot");
    };
    // Commit-latency percentiles from the real durability path.
    let ack = snap.hist("commit.ack").expect("commit.ack histogram");
    assert!(ack.count >= 1, "the INSERT's commit was recorded: {ack:?}");
    assert!(ack.p99() >= ack.p50(), "{ack:?}");
    // Served engines run with spans on: the query stages are populated.
    assert!(snap.hist("query.total").is_some_and(|h| h.count >= 4));
    assert!(snap.hist("query.parse").is_some_and(|h| h.count >= 4));
    assert!(snap.hist("query.exec").is_some_and(|h| h.count >= 4));
    // Degradation-timeliness lag gauge (zero here — nothing is overdue).
    assert_eq!(snap.gauge("degradation.overdue_lag_us"), Some(0));
    // Engine counters and the server-side provider are folded in.
    assert_eq!(snap.counter("db.inserts"), Some(1));
    assert!(snap.counter("server.queries").is_some_and(|q| q >= 4));
    assert!(snap
        .counter("server.connections_accepted")
        .is_some_and(|c| c >= 1));
    // Per-purpose query/row counts: the SELECT ran under STAT, everything
    // before the DECLARE under the "(none)" bucket.
    let purpose = |name: &str| snap.purposes.iter().find(|(n, _)| n == name);
    assert!(purpose("stat").is_some_and(|(_, c)| c.queries >= 1 && c.rows >= 1));
    assert!(purpose("(none)").is_some_and(|(_, c)| c.queries >= 3));
    // Every wire query beat the 1us threshold into the slow-query log —
    // which records statement kinds, never SQL text.
    assert!(!snap.slow_queries.is_empty());
    assert!(snap.slow_queries.iter().any(|q| q.kind == "select"));
    assert!(snap
        .slow_queries
        .iter()
        .all(|q| !q.kind.contains("Jussieu")));

    client.close().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn connection_gate_sheds_with_typed_error() {
    let server = ephemeral_server(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let first = Client::connect(&addr).unwrap();
    let refused = Client::connect(&addr);
    assert!(matches!(refused, Err(Error::ServerBusy(_))), "{refused:?}");
    assert!(server.stats().connections_shed >= 1);

    // The gate reopens once the slot frees.
    first.close().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(&addr) {
            Ok(mut c) => {
                c.ping().unwrap();
                break;
            }
            Err(Error::ServerBusy(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("unexpected connect failure: {e:?}"),
        }
    }
    server.shutdown().unwrap();
}

#[test]
fn queue_depth_backpressure_sheds_queries_not_connections() {
    // A lingering group-commit drain makes every INSERT slow, so raw
    // pipelined queries pile up: 1 executing + 1 queued, the rest shed.
    let clock = MockClock::new();
    let db = Arc::new(
        Db::open(
            DbConfig {
                group_commit: Some(GroupCommitConfig {
                    max_delay: Duration::from_millis(150),
                    ..GroupCommitConfig::default()
                }),
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap(),
    );
    let server = Server::start(
        db,
        registry(),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr.to_string()).unwrap();
    client
        .query("CREATE TABLE kv (k INT INDEXED, v TEXT)")
        .unwrap();

    // Raw pipelining (the library client is strictly request/response).
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    protocol::write_frame(&mut raw, &protocol::client_hello("pipeliner")).unwrap();
    let hello = protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap();
    assert!(matches!(hello, Frame::Hello { .. }));
    const PIPELINED: usize = 4;
    for i in 0..PIPELINED {
        protocol::write_frame(
            &mut raw,
            &Frame::Query {
                sql: format!("INSERT INTO kv VALUES ({i}, 'x')"),
            },
        )
        .unwrap();
    }
    let mut ok = 0;
    let mut busy = 0;
    for _ in 0..PIPELINED {
        match protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap() {
            Frame::ResultSet(QueryOutput::Inserted(1)) => ok += 1,
            Frame::Error { class, .. } if class == "server_busy" => busy += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(ok + busy, PIPELINED);
    assert!(busy >= 1, "queue depth 1 must shed under a 4-deep burst");
    // At least the first admitted query always completes; how many more
    // were admitted depends on when the worker got scheduled relative to
    // the burst (on a single-core host it may pop nothing until all four
    // frames have arrived, shedding three).
    assert!(ok >= 1, "admitted queries still complete");
    let stats = server.stats();
    assert!(stats.queries_shed >= 1, "{stats:?}");
    assert_eq!(stats.connections_shed, 0, "{stats:?}");

    // The shedding connection is still healthy — and sheds are loss-free
    // for admitted work: exactly `ok` inserts landed.
    protocol::write_frame(
        &mut raw,
        &Frame::Query {
            sql: "SELECT k FROM kv".into(),
        },
    )
    .unwrap();
    match protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap() {
        Frame::ResultSet(out) => assert_eq!(out.rows().rows.len(), ok),
        other => panic!("unexpected reply {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn pipelined_queries_execute_and_reply_in_arrival_order() {
    // Queries carry no correlation id, so a pipelining client pairs
    // replies by order; the per-connection turn ticket must therefore
    // serialize same-connection queries in arrival order across the
    // whole worker pool — including session-state dependencies (a
    // pipelined DECLARE must govern the SELECT sent right behind it).
    let server = ephemeral_server(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut admin = Client::connect(addr.to_string()).unwrap();
    admin.query(CREATE_PERSON).unwrap();

    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    protocol::write_frame(&mut raw, &protocol::client_hello("pipeliner")).unwrap();
    assert!(matches!(
        protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap(),
        Frame::Hello { .. }
    ));
    // INSERT → SELECT(sees it) → DECLARE → SELECT(at CITY) — all written
    // before any reply is read. Out-of-order execution on the 4 workers
    // would break at least one expectation below.
    for sql in [
        "INSERT INTO person VALUES (1, '4 rue Jussieu')",
        "SELECT location FROM person WHERE id = 1",
        "DECLARE PURPOSE STAT SET ACCURACY LEVEL CITY FOR LOCATION",
        "SELECT location FROM person WHERE id = 1",
    ] {
        protocol::write_frame(&mut raw, &Frame::Query { sql: sql.into() }).unwrap();
    }
    let mut replies = Vec::new();
    for _ in 0..4 {
        replies.push(protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap());
    }
    assert!(
        matches!(&replies[0], Frame::ResultSet(QueryOutput::Inserted(1))),
        "{replies:?}"
    );
    let Frame::ResultSet(QueryOutput::Rows(r1)) = &replies[1] else {
        panic!("{replies:?}")
    };
    assert_eq!(
        r1.rows[0][0],
        Value::Str("4 rue Jussieu".into()),
        "SELECT pipelined behind the INSERT must see it, at full accuracy"
    );
    assert!(
        matches!(
            &replies[2],
            Frame::ResultSet(QueryOutput::PurposeDeclared(_))
        ),
        "{replies:?}"
    );
    let Frame::ResultSet(QueryOutput::Rows(r2)) = &replies[3] else {
        panic!("{replies:?}")
    };
    assert_eq!(
        r2.rows[0][0],
        Value::Str("Paris".into()),
        "SELECT pipelined behind the DECLARE must run at CITY accuracy"
    );
    server.shutdown().unwrap();
}

#[test]
fn client_reconnects_and_replays_purposes_across_server_restart() {
    let dir = std::env::temp_dir().join(format!(
        "instantdb-srv-reconnect-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("db");
    let db_cfg = || DbConfig {
        path: Some(base.clone()),
        ..DbConfig::default()
    };
    let clock = MockClock::new();

    let reg = registry();
    let db = open_or_recover(db_cfg(), clock.shared(), &reg).unwrap();
    let server = Server::start(db, reg, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    client.query(CREATE_PERSON).unwrap();
    client
        .query("INSERT INTO person VALUES (1, '4 rue Jussieu')")
        .unwrap();
    client
        .query("DECLARE PURPOSE STAT SET ACCURACY LEVEL CITY FOR LOCATION")
        .unwrap();
    let rows = client.query("SELECT location FROM person").unwrap().rows();
    assert_eq!(rows.rows[0][0], Value::Str("Paris".into()));

    // Server goes down (gracefully) and comes back on the same address,
    // recovering tables from the DDL journal + WAL.
    server.shutdown().unwrap();
    let reg = registry();
    let db = open_or_recover(db_cfg(), clock.shared(), &reg).unwrap();
    let server = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Server::start(
                db.clone(),
                reg.clone(),
                ServerConfig {
                    addr: addr.clone(),
                    ..ServerConfig::default()
                },
            ) {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("rebind failed: {e}"),
            }
        }
    };

    // The same client object keeps working: the dead connection is
    // detected, re-dialed, and the purpose journal replayed — so the
    // SELECT still runs at CITY accuracy on the recovered data.
    let rows = client.query("SELECT location FROM person").unwrap().rows();
    assert_eq!(rows.rows.len(), 1, "committed insert survived restart");
    assert_eq!(rows.rows[0][0], Value::Str("Paris".into()));
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
