//! # instant-server
//!
//! The network front-end that turns the embedded InstantDB engine into a
//! served one: a TCP server speaking a length-prefixed, versioned frame
//! protocol ([`protocol`]), one [`Session`](instant_core::Session) per
//! connection (purpose declarations persist across a connection's
//! queries), a bounded worker pool executing statements, and two-gate
//! admission control — connection count at accept, queue depth at
//! dispatch — that sheds overload with a typed
//! [`ServerBusy`](instant_common::Error::ServerBusy) error instead of
//! queueing unboundedly or stalling the accept loop.
//!
//! The serving layer is deliberately thin: concurrency control (2PL),
//! durability (the group-commit pipeline — built precisely to amortize
//! many concurrent committers' fsyncs, which a multi-client server
//! finally supplies) and timely degradation all live in the engine
//! below. What this crate adds is the traffic shape: admission, session
//! multiplexing, typed error transport, graceful shutdown in dependency
//! order, and a DDL journal so a restarted server recovers its schemas
//! ([`server::open_or_recover`]).
//!
//! * [`server`] — [`Server`]: acceptor, readers, worker pool, stats,
//!   shutdown.
//! * [`client`] — [`Client`]: blocking, reconnect-aware, replays purpose
//!   declarations after re-dial.
//! * [`protocol`] — frame codec shared by both sides.
//! * [`stats`] — [`ServerStats`], the network sibling of
//!   [`wal_stats`](instant_core::metrics::wal_stats).
//!
//! Binaries: `instantdb-server` (serve a data directory) and
//! `instantdb-cli` (drive a server from scripts or a REPL).

pub mod client;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, ClientConfig};
pub use server::{open_or_recover, Server, ServerConfig};
pub use stats::ServerStats;

/// Snapshot a running server's counters — the serving-layer counterpart
/// of [`instant_core::metrics::wal_stats`].
pub fn server_stats(server: &Server) -> ServerStats {
    server.stats()
}
