//! `instantdb-server` — serve an InstantDB data directory over TCP.
//!
//! ```text
//! instantdb-server --addr 127.0.0.1:5433 --data /var/lib/idb/main \
//!     [--max-conns N] [--workers N] [--queue-depth N]
//!     [--wal-shards N] [--checkpoint-every-ms N] [--degrade-every-ms N]
//!     [--wal-retention-segments N] [--stdin-control]
//! ```
//!
//! Without `--data` the engine is ephemeral (temp files, gone on exit).
//! With it, the server journals DDL and recovers tables + committed WAL
//! suffix on restart. `--stdin-control` reads lines from stdin and shuts
//! down gracefully on `shutdown` or EOF — the hook CI's smoke lane (and
//! any supervisor with a control pipe) uses; otherwise the process serves
//! until killed (acknowledged commits are WAL-durable either way).

use std::sync::Arc;

use instant_common::SystemClock;
use instant_core::query::HierarchyRegistry;
use instant_core::DbConfig;
use instant_lcp::gtree::location_tree_fig1;
use instant_server::{open_or_recover, Server, ServerConfig};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: instantdb-server [--addr A] [--data PATH] [--max-conns N] \
         [--workers N] [--queue-depth N] [--max-frame-bytes N] \
         [--wal-shards N] [--checkpoint-every-ms N] [--degrade-every-ms N] \
         [--wal-retention-segments N] [--slow-query-ms N] [--stdin-control]"
    );
    std::process::exit(2);
}

struct Args {
    addr: String,
    data: Option<std::path::PathBuf>,
    max_conns: usize,
    workers: usize,
    queue_depth: usize,
    max_frame_bytes: u32,
    wal_shards: Option<usize>,
    checkpoint_every_ms: Option<u64>,
    degrade_every_ms: Option<u64>,
    wal_retention_segments: Option<u64>,
    slow_query_ms: Option<u64>,
    stdin_control: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:5433".into(),
        data: None,
        max_conns: 64,
        workers: 4,
        queue_depth: 64,
        max_frame_bytes: instant_server::protocol::DEFAULT_MAX_FRAME_BYTES,
        wal_shards: None,
        checkpoint_every_ms: None,
        degrade_every_ms: Some(250),
        wal_retention_segments: None,
        slow_query_ms: None,
        stdin_control: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--data" => args.data = Some(value("--data").into()),
            "--max-conns" => args.max_conns = parse(&value("--max-conns"), "--max-conns"),
            "--workers" => args.workers = parse(&value("--workers"), "--workers"),
            "--queue-depth" => args.queue_depth = parse(&value("--queue-depth"), "--queue-depth"),
            "--max-frame-bytes" => {
                args.max_frame_bytes = parse(&value("--max-frame-bytes"), "--max-frame-bytes")
            }
            "--wal-shards" => args.wal_shards = Some(parse(&value("--wal-shards"), "--wal-shards")),
            "--checkpoint-every-ms" => {
                args.checkpoint_every_ms = Some(parse(
                    &value("--checkpoint-every-ms"),
                    "--checkpoint-every-ms",
                ))
            }
            "--degrade-every-ms" => {
                args.degrade_every_ms =
                    Some(parse(&value("--degrade-every-ms"), "--degrade-every-ms"))
            }
            "--no-degrade" => args.degrade_every_ms = None,
            "--wal-retention-segments" => {
                args.wal_retention_segments = Some(parse(
                    &value("--wal-retention-segments"),
                    "--wal-retention-segments",
                ))
            }
            "--slow-query-ms" => {
                args.slow_query_ms = Some(parse(&value("--slow-query-ms"), "--slow-query-ms"))
            }
            "--stdin-control" => args.stdin_control = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")))
}

fn main() {
    let args = parse_args();
    let hierarchies = HierarchyRegistry::new();
    // Built-in domain hierarchies remote DDL can reference by name.
    hierarchies.register("location_gt", Arc::new(location_tree_fig1()));

    // Assemble the engine config through the validating builder: a bad
    // combination (e.g. `--wal-shards 0`) is rejected here with a usage
    // error instead of reaching `Db::open` half-configured.
    let mut builder = DbConfig::builder();
    if let Some(p) = args.data.clone() {
        builder = builder.path(p);
    }
    if let Some(n) = args.wal_shards {
        builder = builder.wal_shards(n);
    }
    if let Some(ms) = args.checkpoint_every_ms {
        builder = builder.checkpoint_every(std::time::Duration::from_millis(ms));
    }
    if let Some(cap) = args.wal_retention_segments {
        builder = builder.wal_retention_segments(cap);
    }
    if let Some(ms) = args.slow_query_ms {
        builder = builder.slow_query(std::time::Duration::from_millis(ms));
    }
    let db_cfg = match builder.build() {
        Ok(cfg) => cfg,
        Err(e) => usage(&e.to_string()),
    };
    let db = match open_or_recover(db_cfg, Arc::new(SystemClock), &hierarchies) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("instantdb-server: cannot open engine: {e}");
            std::process::exit(1);
        }
    };
    let server_cfg = ServerConfig {
        addr: args.addr,
        max_connections: args.max_conns,
        workers: args.workers,
        queue_depth: args.queue_depth,
        max_frame_bytes: args.max_frame_bytes,
        degrade_every: args.degrade_every_ms.map(std::time::Duration::from_millis),
        ..ServerConfig::default()
    };
    let server = match Server::start(db, hierarchies, server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("instantdb-server: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    // Scripts (and the CI smoke lane) wait for this exact line.
    println!("instantdb-server listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    if args.stdin_control {
        // Control protocol: any `shutdown` line (or EOF) triggers a
        // graceful stop; `stats` prints a counter snapshot; `stats-ndjson`
        // dumps the full observability snapshot one JSON object per line
        // (terminated by a blank line so a controller knows it is done).
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            use std::io::BufRead as _;
            match stdin.lock().read_line(&mut line) {
                Ok(0) => break, // EOF: controller went away
                Ok(_) => match line.trim() {
                    "shutdown" | "quit" | "exit" => break,
                    "stats" => {
                        println!("{:?}", server.stats());
                        let _ = std::io::stdout().flush();
                    }
                    "stats-ndjson" => {
                        let snap = instant_core::metrics::stats_snapshot(server.db());
                        for l in snap.ndjson_lines("server") {
                            println!("{l}");
                        }
                        println!();
                        let _ = std::io::stdout().flush();
                    }
                    "" => {}
                    other => eprintln!("instantdb-server: unknown control '{other}'"),
                },
                Err(_) => break,
            }
        }
        match server.shutdown() {
            Ok(()) => println!("instantdb-server: clean shutdown"),
            Err(e) => {
                eprintln!("instantdb-server: shutdown error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        // Serve until the process is killed.
        loop {
            std::thread::park();
        }
    }
}
