//! `instantdb-cli` — drive an `instantdb-server` from scripts or a REPL.
//!
//! ```text
//! instantdb-cli --addr 127.0.0.1:5433 -e "CREATE TABLE kv (k INT INDEXED, v TEXT)" \
//!                                     -e "INSERT INTO kv VALUES (1, 'hello')"
//! instantdb-cli --addr 127.0.0.1:5433 -e "SELECT v FROM kv WHERE k = 1"
//! instantdb-cli --addr 127.0.0.1:5433 --ping --wait-ms 5000
//! ```
//!
//! Each `-e` statement executes in order on one connection (so a
//! `DECLARE PURPOSE` applies to the following `SELECT`s). Without `-e`
//! the CLI reads statements line by line from stdin. `--wait-ms` retries
//! the initial connect until the deadline — handy right after spawning a
//! server. Rows print tab-separated with a header line; the process exits
//! non-zero on the first failed statement.

use std::time::{Duration, Instant};

use instant_core::query::QueryOutput;
use instant_server::{Client, ClientConfig};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: instantdb-cli [--addr A] [-e SQL]... [--ping] [--wait-ms N] [--quiet]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:5433".to_string();
    let mut statements: Vec<String> = Vec::new();
    let mut ping = false;
    let mut wait_ms: u64 = 0;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "-e" | "--execute" => statements.push(value("-e")),
            "--ping" => ping = true,
            "--wait-ms" => {
                wait_ms = value("--wait-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --wait-ms value"))
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let mut client = match connect_with_wait(&addr, wait_ms) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("instantdb-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    if ping {
        match client.ping() {
            Ok(()) => {
                if !quiet {
                    println!("pong");
                }
            }
            Err(e) => {
                eprintln!("instantdb-cli: ping failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let from_stdin = statements.is_empty() && !ping;
    if from_stdin {
        use std::io::BufRead as _;
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            let sql = line.trim();
            if sql.is_empty() || sql.starts_with("--") {
                continue;
            }
            if !run_one(&mut client, sql, quiet) {
                std::process::exit(1);
            }
        }
    } else {
        for sql in &statements {
            if !run_one(&mut client, sql, quiet) {
                std::process::exit(1);
            }
        }
    }
    let _ = client.close();
}

fn connect_with_wait(addr: &str, wait_ms: u64) -> Result<Client, instant_common::Error> {
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    loop {
        match Client::connect_with(addr.to_string(), ClientConfig::default()) {
            Ok(c) => return Ok(c),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Execute + print one statement; `false` on failure.
fn run_one(client: &mut Client, sql: &str, quiet: bool) -> bool {
    match client.query(sql) {
        Ok(output) => {
            if !quiet {
                print_output(&output);
            }
            true
        }
        Err(e) => {
            eprintln!("instantdb-cli: [{}] {e}", e.class());
            false
        }
    }
}

fn print_output(output: &QueryOutput) {
    match output {
        QueryOutput::TableCreated(name) => println!("created table {name}"),
        QueryOutput::Inserted(n) => println!("inserted {n}"),
        QueryOutput::Deleted(n) => println!("deleted {n}"),
        QueryOutput::PurposeDeclared(name) => println!("purpose {name} declared"),
        QueryOutput::Checkpointed => println!("checkpointed"),
        QueryOutput::Rows(r) => {
            println!("{}", r.columns.join("\t"));
            for row in &r.rows {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join("\t"));
            }
            println!("({} rows)", r.rows.len());
        }
        QueryOutput::Stats(snap) => print_stats(snap),
    }
}

fn print_stats(snap: &instant_obs::StatsSnapshot) {
    println!("histogram\tcount\tp50_us\tp95_us\tp99_us\tmax_us");
    for (name, h) in &snap.hists {
        if h.is_empty() {
            continue;
        }
        println!(
            "{name}\t{}\t{}\t{}\t{}\t{}",
            h.count,
            h.p50(),
            h.p95(),
            h.p99(),
            h.max_micros
        );
    }
    for (name, v) in &snap.counters {
        println!("counter\t{name}\t{v}");
    }
    for (name, v) in &snap.gauges {
        println!("gauge\t{name}\t{v}");
    }
    for (purpose, c) in &snap.purposes {
        println!("purpose\t{purpose}\tqueries={}\trows={}", c.queries, c.rows);
    }
    for q in &snap.slow_queries {
        println!(
            "slow_query\t{}\tpurpose={}\telapsed_us={}",
            q.kind, q.purpose, q.elapsed_micros
        );
    }
}
