//! Server observability counters — the network-layer sibling of
//! [`instant_core::metrics::wal_stats`]: one snapshot struct covering
//! connections, frames, queries, errors and admission-control sheds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters updated by the acceptor, readers and workers.
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub accepted: AtomicU64,
    pub active: AtomicU64,
    pub shed_connections: AtomicU64,
    pub frames: AtomicU64,
    pub queries: AtomicU64,
    pub query_errors: AtomicU64,
    pub shed_queries: AtomicU64,
    pub pings: AtomicU64,
    pub protocol_errors: AtomicU64,
    pub dropped_replies: AtomicU64,
}

impl StatsCells {
    pub fn add(&self, cell: impl Fn(&StatsCells) -> &AtomicU64) {
        cell(self).fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServerStats {
        let o = Ordering::Relaxed;
        ServerStats {
            connections_accepted: self.accepted.load(o),
            connections_active: self.active.load(o),
            connections_shed: self.shed_connections.load(o),
            frames: self.frames.load(o),
            queries: self.queries.load(o),
            query_errors: self.query_errors.load(o),
            queries_shed: self.shed_queries.load(o),
            pings: self.pings.load(o),
            protocol_errors: self.protocol_errors.load(o),
            dropped_replies: self.dropped_replies.load(o),
        }
    }
}

/// A point-in-time snapshot of the server's counters (monotonic since
/// start, except the `connections_active` gauge).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections admitted past the `max_connections` gate.
    pub connections_accepted: u64,
    /// Currently open connections (gauge).
    pub connections_active: u64,
    /// Connections refused at accept with a `ServerBusy` error frame.
    pub connections_shed: u64,
    /// Frames read from clients after the handshake (queries + pings +
    /// closes).
    pub frames: u64,
    /// Query frames executed to completion (success or engine error).
    pub queries: u64,
    /// Executed queries that returned an engine error frame.
    pub query_errors: u64,
    /// Query frames shed by queue-depth backpressure with `ServerBusy`
    /// (never executed).
    pub queries_shed: u64,
    /// Ping frames answered.
    pub pings: u64,
    /// Connections torn down for protocol violations (oversized frame,
    /// corrupt framing, unexpected frame kind).
    pub protocol_errors: u64,
    /// Responses that could not be written because the client was gone
    /// (mid-query disconnects).
    pub dropped_replies: u64,
}

impl ServerStats {
    /// Requests refused by admission control (either gate).
    pub fn total_shed(&self) -> u64 {
        self.connections_shed + self.queries_shed
    }
}
