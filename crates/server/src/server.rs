//! The server: acceptor, per-connection sessions, bounded worker pool,
//! admission control, graceful shutdown.
//!
//! Thread shape:
//!
//! * **acceptor** — one thread on the listener. Admission gate #1: past
//!   `max_connections` live connections a new client gets one typed
//!   `ServerBusy` error frame and an immediate close; the accept loop
//!   itself never blocks on engine work.
//! * **reader per connection** (bounded by `max_connections`) — performs
//!   the versioned handshake, then turns `Query` frames into jobs for the
//!   worker pool. Admission gate #2: when the job queue is at
//!   `queue_depth` the query is answered with `ServerBusy` right from the
//!   reader — shed, not queued, so a burst degrades into fast failures
//!   instead of unbounded latency. `Ping` is answered inline (it must
//!   stay cheap precisely when the pool is saturated).
//! * **worker pool** (`workers` threads) — executes jobs against the
//!   connection's [`Session`] (one session per connection, reused across
//!   frames, so `DECLARE PURPOSE` state persists between queries) and
//!   writes the `ResultSet`/`Error` frame back. A client that vanished
//!   mid-query costs one failed write (`dropped_replies`), never a
//!   worker.
//!
//! [`Server::shutdown`] tears down in dependency order: stop admitting,
//! unblock and join the readers, drain the worker queue (in-flight
//! queries finish and their commits are acknowledged), stop the
//! background daemons, and only then drop the [`Db`] — whose own drop
//! order drains the group-commit pipeline before the log handle closes,
//! so an acknowledged commit can never be lost to a graceful shutdown.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration as StdDuration;

use parking_lot::{Condvar, Mutex};

use instant_common::{Error, Result, SharedClock};
use instant_core::query::{schema_for_create, HierarchyRegistry, QueryOutput};
use instant_core::{Checkpointer, Db, DbConfig, DegradationDaemon, Session};
use instant_obs::Stage;

use crate::protocol::{self, Frame, PROTOCOL_VERSION};
use crate::stats::{ServerStats, StatsCells};

/// Network/admission tuning. The engine itself is configured by
/// [`DbConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Admission gate #1: connections past this are refused with
    /// `ServerBusy`.
    pub max_connections: usize,
    /// Query-executing worker threads.
    pub workers: usize,
    /// Admission gate #2: queries queued beyond the workers; a full queue
    /// sheds with `ServerBusy`.
    pub queue_depth: usize,
    /// Largest accepted frame (`len` field), bytes.
    pub max_frame_bytes: u32,
    /// Spawn a [`DegradationDaemon`] pumping every interval — the served
    /// engine enforces timely degradation without any client's help.
    pub degrade_every: Option<StdDuration>,
    /// How long a freshly accepted connection gets to complete the
    /// `Hello` exchange before its slot is reclaimed. Without this, a
    /// client that connects and sends nothing would occupy a
    /// `max_connections` slot forever — the admission gate itself would
    /// be the denial-of-service vector.
    pub handshake_timeout: StdDuration,
    /// Per-syscall cap on reply writes. A client that stops reading
    /// (zero TCP window) fails its reply after this long instead of
    /// parking a worker forever; a slow-but-draining reader gets a fresh
    /// allowance per partial write and is unaffected.
    pub write_timeout: StdDuration,
    /// Slow-query threshold for the engine's slow-query log. Applied at
    /// start only when [`DbConfig::slow_query`] left the engine's own
    /// threshold unset; `None` here keeps whatever the engine has.
    pub slow_query: Option<StdDuration>,
    /// Serve every connection in read-only mode: mutating statements
    /// fail with a typed [`ReadOnly`](instant_common::Error::ReadOnly)
    /// error while SELECT / DECLARE PURPOSE / SHOW STATS run normally.
    /// This is how a replication follower exposes its engine.
    pub read_only: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            workers: 4,
            queue_depth: 64,
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            degrade_every: None,
            handshake_timeout: StdDuration::from_secs(10),
            write_timeout: StdDuration::from_secs(30),
            slow_query: Some(StdDuration::from_millis(250)),
            read_only: false,
        }
    }
}

/// Per-connection state shared between its reader and the workers.
struct ConnState {
    /// Writing side; every response frame is written under this lock so
    /// frames never interleave on the stream.
    stream: Mutex<TcpStream>, // lock-rank: 160
    /// Outgoing frame cap (mirrors the incoming one): a reply larger
    /// than this is replaced by a typed `capacity` error, keeping the
    /// connection alive instead of desynchronizing the client.
    max_frame_bytes: u32,
    /// The connection's session — reused across frames, so purpose
    /// declarations persist for the connection's lifetime.
    session: Mutex<Session>, // lock-rank: 150
    /// Sequence of the next Query that may execute and reply. Query
    /// frames carry no correlation id, so a pipelining client pairs
    /// replies with queries by order alone — and session state demands
    /// in-order *execution* too (a pipelined `DECLARE PURPOSE` must
    /// govern the `SELECT` behind it). This ticket serializes each
    /// connection's queries in arrival order across the pool — worker
    /// results *and* reader-side `ServerBusy` sheds — even when two
    /// pipelined queries land on different workers. (Execution was
    /// already serialized by the session mutex; the ticket only pins
    /// its order, so cross-connection parallelism is untouched.)
    turn: Mutex<u64>, // lock-rank: 140
    turn_cv: Condvar,
}

impl ConnState {
    /// Best-effort frame write (oversized replies become typed capacity
    /// errors); `false` when the client is gone.
    fn send(&self, frame: &Frame) -> bool {
        let mut stream = self.stream.lock();
        // lint:allow(L102, the per-connection stream mutex exists to keep frames atomic on the wire; the write must happen under it)
        protocol::write_frame_capped(&mut *stream, frame, self.max_frame_bytes).is_ok()
    }

    /// Block until query number `seq` may run: every earlier query on
    /// this connection has executed and its reply is on the wire.
    fn await_turn(&self, seq: u64) {
        let mut turn = self.turn.lock();
        while *turn != seq {
            self.turn_cv.wait(&mut turn);
        }
    }

    /// Reply for the current-turn query and open the next turn. Always
    /// advances, even when the client is gone — later replies must never
    /// wait on a dead send.
    fn finish_turn(&self, frame: &Frame) -> bool {
        let ok = self.send(frame);
        *self.turn.lock() += 1;
        self.turn_cv.notify_all();
        ok
    }

    /// [`ConnState::await_turn`] + [`ConnState::finish_turn`] in one step
    /// (the reader's shed path, which has no work between them).
    fn send_in_turn(&self, seq: u64, frame: &Frame) -> bool {
        self.await_turn(seq);
        self.finish_turn(frame)
    }
}

/// One unit of work for the pool: a query on behalf of a connection.
struct Job {
    conn: Arc<ConnState>,
    sql: String,
    /// Arrival order on the connection; replies are serialized by it.
    seq: u64,
}

/// Outcome of offering a job to the bounded queue.
enum Pushed {
    Queued,
    Shed,
    Closed,
}

/// The bounded MPMC job queue behind the worker pool.
struct JobQueue {
    inner: Mutex<QueueInner>, // lock-rank: 130
    cv: Condvar,
    depth: usize,
}

struct QueueInner {
    jobs: std::collections::VecDeque<Job>,
    open: bool,
}

impl JobQueue {
    fn new(depth: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::ranked(
                130,
                QueueInner {
                    jobs: std::collections::VecDeque::new(),
                    open: true,
                },
            ),
            cv: Condvar::new(),
            depth: depth.max(1),
        }
    }

    fn try_push(&self, job: Job) -> Pushed {
        let mut inner = self.inner.lock();
        if !inner.open {
            return Pushed::Closed;
        }
        if inner.jobs.len() >= self.depth {
            return Pushed::Shed;
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.cv.notify_one();
        Pushed::Queued
    }

    /// Blocking pop; `None` once the queue is closed *and* drained, so a
    /// shutdown still executes every admitted query.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if !inner.open {
                return None;
            }
            self.cv.wait(&mut inner);
        }
    }

    fn close(&self) {
        self.inner.lock().open = false;
        self.cv.notify_all();
    }
}

/// State shared by the acceptor, readers and workers.
struct Shared {
    db: Arc<Db>,
    hierarchies: HierarchyRegistry,
    cfg: ServerConfig,
    /// Shared with the obs "server" counter provider, which outlives any
    /// one `Server` over the same engine (re-registration replaces it).
    stats: Arc<StatsCells>,
    queue: JobQueue,
    shutting_down: AtomicBool,
    next_conn_id: AtomicU64,
    /// In-flight courtesy-refusal threads (see [`refuse`]); bounded so a
    /// connection flood cannot turn the shed path itself into thread
    /// exhaustion.
    refusing: AtomicU64,
    /// Write-side stream clones, for unblocking readers at shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>, // lock-rank: 120
    readers: Mutex<Vec<JoinHandle<()>>>, // lock-rank: 110
    /// Append-only DDL journal (see [`open_or_recover`]); `None` for an
    /// ephemeral engine.
    ddl: Option<Mutex<std::fs::File>>, // lock-rank: 100
}

/// A running InstantDB network front-end over an embedded [`Db`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    checkpointer: Option<Checkpointer>,
    degrader: Option<DegradationDaemon>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.local_addr)
            .field("stats", &self.shared.stats.snapshot())
            .finish()
    }
}

impl Server {
    /// Bind, spawn the acceptor + worker pool (+ the background daemons
    /// the engine config arms), and return. `hierarchies` is shared by
    /// every connection's session — register domain trees here so remote
    /// `CREATE TABLE … DEGRADE USING <name>` can resolve them.
    pub fn start(db: Arc<Db>, hierarchies: HierarchyRegistry, cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let ddl = match &db.config().path {
            Some(p) => Some(Mutex::ranked(
                100,
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(ddl_path(p))?,
            )),
            None => None,
        };
        let checkpointer = Checkpointer::spawn_from_config(&db)?;
        let degrader = cfg
            .degrade_every
            .map(|every| DegradationDaemon::spawn(db.clone(), every))
            .transpose()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_depth),
            db,
            hierarchies,
            cfg,
            stats: Arc::new(StatsCells::default()),
            shutting_down: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(1),
            refusing: AtomicU64::new(0),
            conns: Mutex::ranked(120, HashMap::new()),
            readers: Mutex::ranked(110, Vec::new()),
            ddl,
        });
        // Served engines run with tracing spans on: the query/commit
        // stage histograms behind `SHOW STATS` are the point of serving.
        // (Embedded engines leave them off — zero cost unless opted in.)
        shared.db.obs().set_spans_enabled(true);
        // Arm the slow-query log unless the engine config already chose.
        if shared.db.config().slow_query.is_none() {
            if let Some(threshold) = shared.cfg.slow_query {
                shared.db.obs().set_slow_query_threshold(Some(threshold));
            }
        }
        // Fold the network counters into the engine's stats snapshot so
        // `SHOW STATS` is the whole story (engine + serving layer).
        {
            let cells = shared.stats.clone();
            shared.db.obs().register_provider("server", move || {
                let s = cells.snapshot();
                vec![
                    ("connections_accepted".into(), s.connections_accepted),
                    ("connections_active".into(), s.connections_active),
                    ("connections_shed".into(), s.connections_shed),
                    ("frames".into(), s.frames),
                    ("queries".into(), s.queries),
                    ("query_errors".into(), s.query_errors),
                    ("queries_shed".into(), s.queries_shed),
                    ("pings".into(), s.pings),
                    ("protocol_errors".into(), s.protocol_errors),
                    ("dropped_replies".into(), s.dropped_replies),
                ]
            });
        }
        // Thread spawns can fail under resource pressure; a server that
        // cannot field its pool must report that, not panic half-built.
        // Closing the queue unblocks any workers that did start so they
        // exit instead of leaking.
        let spawned = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("idb-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>();
        let workers = match spawned {
            Ok(workers) => workers,
            Err(e) => {
                shared.queue.close();
                return Err(e.into());
            }
        };
        let acceptor = {
            let shared2 = shared.clone();
            let spawned = std::thread::Builder::new()
                .name("idb-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared2));
            match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    shared.queue.close();
                    for h in workers {
                        let _ = h.join();
                    }
                    return Err(e.into());
                }
            }
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
            checkpointer,
            degrader,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the server.
    pub fn db(&self) -> &Arc<Db> {
        &self.shared.db
    }

    /// Snapshot the server counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Graceful shutdown — see the module docs for the ordering. Errors
    /// from the background daemons' final ticks are returned (first one
    /// wins) after the teardown completes either way.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<()> {
        // 1. Stop admitting: flag + a self-connection to unblock accept().
        self.shared.shutting_down.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // 2. Unblock readers (close the read side so in-flight responses
        //    can still be written) and join them — no new jobs after this.
        for stream in self.shared.conns.lock().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for h in std::mem::take(&mut *self.shared.readers.lock()) {
            let _ = h.join();
        }
        // 3. Drain the pool: close the queue, workers finish every
        //    admitted job (acknowledging its commit) and exit.
        self.shared.queue.close();
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
        for stream in self.shared.conns.lock().drain().map(|(_, s)| s) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // 4. Background daemons: final drain tick, then join.
        let mut first_err = None;
        if let Some(d) = self.degrader.take() {
            if let Err(e) = d.stop() {
                first_err.get_or_insert(e);
            }
        }
        if let Some(c) = self.checkpointer.take() {
            if let Err(e) = c.stop() {
                first_err.get_or_insert(e);
            }
        }
        // 5. The Db (and with it the group-commit pipeline, drained by
        //    its drop order) goes down with the last Arc — the caller may
        //    still hold one for post-shutdown inspection.
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            // lint:allow(L006, drop is best-effort; shutdown errors have no caller left to report to)
            let _ = self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            // Listener failure: without accept there is no server; exit
            // (shutdown also lands here after its wake-up connect).
            return;
        };
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        // Reap finished readers so the handle list tracks live
        // connections rather than growing for the server's lifetime.
        shared.readers.lock().retain(|h| !h.is_finished());
        let active = shared.stats.active.load(Ordering::Relaxed);
        if active as usize >= shared.cfg.max_connections {
            shared.stats.add(|s| &s.shed_connections);
            // Detached: the refusal reads the client's handshake first
            // (so the close is a clean FIN, not an RST racing the typed
            // error off the wire), and that read must never be allowed
            // to stall the accept loop. Courtesy threads are themselves
            // bounded — past the cap a flood gets a bare close, so the
            // shed path can never become the thread-exhaustion vector.
            const MAX_REFUSING: u64 = 32;
            if shared.refusing.fetch_add(1, Ordering::AcqRel) >= MAX_REFUSING {
                shared.refusing.fetch_sub(1, Ordering::AcqRel);
                drop(stream);
                continue;
            }
            let shared2 = shared.clone();
            let spawned = std::thread::Builder::new()
                .name("idb-refuse".into())
                .spawn(move || {
                    refuse(stream);
                    shared2.refusing.fetch_sub(1, Ordering::AcqRel);
                });
            if spawned.is_err() {
                shared.refusing.fetch_sub(1, Ordering::AcqRel);
            }
            continue;
        }
        shared.stats.add(|s| &s.accepted);
        shared.stats.active.fetch_add(1, Ordering::Relaxed);
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(id, clone);
        }
        let shared2 = shared.clone();
        let reader = std::thread::Builder::new()
            .name(format!("idb-conn-{id}"))
            .spawn(move || {
                reader_loop(stream, &shared2);
                shared2.conns.lock().remove(&id);
                shared2.stats.active.fetch_sub(1, Ordering::Relaxed);
            });
        match reader {
            Ok(h) => shared.readers.lock().push(h),
            Err(_) => {
                // Thread pressure: give the slot back and drop the
                // connection (the closure — and the stream it owns —
                // was returned and dropped). Panicking here would kill
                // the acceptor and leave a half-dead server.
                shared.conns.lock().remove(&id);
                shared.stats.active.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Refuse a connection at the gate with one typed error frame. Runs on a
/// throwaway thread with bounded timeouts; the client's handshake frame
/// is consumed first so the refusal arrives as data + FIN rather than
/// being destroyed by an RST for unread input.
fn refuse(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(StdDuration::from_secs(1)));
    let _ = stream.set_write_timeout(Some(StdDuration::from_secs(1)));
    // lint:allow(L006, refusal is best-effort: the socket is being dropped and the peer may already be gone)
    let _ = protocol::read_frame(&mut stream, protocol::DEFAULT_MAX_FRAME_BYTES);
    // lint:allow(L006, refusal is best-effort: the socket is being dropped and the peer may already be gone)
    let _ = protocol::write_frame(
        &mut stream,
        &Frame::error(&Error::ServerBusy("connection limit reached".into())),
    );
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn reader_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Timeouts apply to the socket, so the write-side clone taken below
    // inherits them: replies to a client that stopped reading fail after
    // `write_timeout` per syscall instead of parking a worker forever.
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    // The handshake read is deadlined — a connect-and-say-nothing client
    // must not hold a max_connections slot indefinitely…
    let _ = stream.set_read_timeout(Some(shared.cfg.handshake_timeout));
    // Handshake first: magic + matching version, or one error and out.
    match protocol::read_frame(&mut stream, shared.cfg.max_frame_bytes) {
        Ok(Some(Frame::Hello { version, .. })) if version == PROTOCOL_VERSION => {
            let hello = Frame::Hello {
                version: PROTOCOL_VERSION,
                banner: format!("instantdb-server/{}", env!("CARGO_PKG_VERSION")),
            };
            if protocol::write_frame(&mut stream, &hello).is_err() {
                return;
            }
        }
        Ok(Some(Frame::Hello { version, .. })) => {
            shared.stats.add(|s| &s.protocol_errors);
            send_raw(
                &mut stream,
                &Frame::error(&Error::Unsupported(format!(
                    "protocol version {version} (server speaks {PROTOCOL_VERSION})"
                ))),
            );
            return;
        }
        Ok(_) => {
            shared.stats.add(|s| &s.protocol_errors);
            send_raw(
                &mut stream,
                &Frame::error(&Error::Corrupt("expected Hello handshake".into())),
            );
            return;
        }
        Err(e) => {
            shared.stats.add(|s| &s.protocol_errors);
            send_raw(&mut stream, &Frame::error(&e));
            return;
        }
    }
    // …but an *established* idle connection is legitimate: lift the
    // read deadline for the session loop.
    let _ = stream.set_read_timeout(None);
    let conn = Arc::new(ConnState {
        stream: Mutex::ranked(
            160,
            match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            },
        ),
        max_frame_bytes: shared.cfg.max_frame_bytes,
        session: Mutex::ranked(150, {
            let mut session = Session::with_registry(shared.db.clone(), shared.hierarchies.clone());
            session.set_read_only(shared.cfg.read_only);
            session
        }),
        turn: Mutex::ranked(140, 0),
        turn_cv: Condvar::new(),
    });
    let mut next_seq = 0u64;
    loop {
        match protocol::read_frame(&mut stream, shared.cfg.max_frame_bytes) {
            Ok(Some(Frame::Query { sql })) => {
                shared.stats.add(|s| &s.frames);
                let seq = next_seq;
                next_seq += 1;
                match shared.queue.try_push(Job {
                    conn: conn.clone(),
                    sql,
                    seq,
                }) {
                    Pushed::Queued => {}
                    Pushed::Shed => {
                        // In turn like any reply: a shed for query N must
                        // not overtake the result of admitted query N-1,
                        // or a pipelining client mispairs them. Blocking
                        // here also stops reading from this connection —
                        // natural per-connection backpressure; the accept
                        // loop and other connections are unaffected.
                        shared.stats.add(|s| &s.shed_queries);
                        conn.send_in_turn(
                            seq,
                            &Frame::error(&Error::ServerBusy(format!(
                                "query queue full ({} deep)",
                                shared.cfg.queue_depth
                            ))),
                        );
                    }
                    Pushed::Closed => return,
                }
            }
            Ok(Some(Frame::Ping)) => {
                shared.stats.add(|s| &s.frames);
                shared.stats.add(|s| &s.pings);
                if !conn.send(&Frame::Pong) {
                    return;
                }
            }
            Ok(Some(Frame::Close)) => {
                // Graceful end of session: count it and close quietly.
                shared.stats.add(|s| &s.frames);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Ok(Some(other)) => {
                shared.stats.add(|s| &s.protocol_errors);
                conn.send(&Frame::error(&Error::Corrupt(format!(
                    "unexpected frame {other:?} after handshake"
                ))));
                return;
            }
            Ok(None) => return, // client disconnected
            Err(e @ Error::Capacity(_)) | Err(e @ Error::Corrupt(_)) => {
                // Oversized or unparseable frame: the stream position is
                // no longer trustworthy — answer typed, then close.
                shared.stats.add(|s| &s.protocol_errors);
                conn.send(&Frame::error(&e));
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Err(_) => return, // transport error
        }
    }
}

/// Write a frame to a not-yet-registered connection (handshake errors).
fn send_raw(stream: &mut TcpStream, frame: &Frame) {
    let _ = stream.set_write_timeout(Some(StdDuration::from_secs(1)));
    // lint:allow(L006, handshake error reply is best-effort; the connection closes either way)
    let _ = protocol::write_frame(stream, frame);
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        // Arrival-order gate: never executes query N before N-1's reply
        // is out (no deadlock: the global queue is FIFO, so every
        // earlier same-connection job was popped — and is progressing on
        // some worker — before this one).
        job.conn.await_turn(job.seq);
        // DDL statements execute under the journal lock, so the journal
        // records CREATE TABLEs in exactly catalog-TableId order even
        // when two connections race — recovery replays the journal top
        // to bottom and must re-derive the same ids the WAL records
        // carry. (Residual window, documented on `journal_ddl`: a crash
        // between the catalog insert and the journal fsync can lose a
        // table another connection already saw by name.)
        let ddl_guard = if is_ddl(&job.sql) {
            shared.ddl.as_ref().map(|m| m.lock())
        } else {
            None
        };
        let result = {
            let mut session = job.conn.session.lock();
            // lint:allow(L102, the session turn mutex is held for the whole statement by design (sessions are serial); a CHECKPOINT statement fsyncs under it)
            session.execute(&job.sql)
        };
        shared.stats.add(|s| &s.queries);
        let reply = match result {
            Ok(output) => {
                // A created table must be journaled durably *before* the
                // acknowledgment: if the journal write fails, the client
                // is told the CREATE failed (the in-memory table exists
                // but would be unrecoverable after a restart — rows
                // committed into it must not look durable).
                let journaled = match (&output, ddl_guard) {
                    (QueryOutput::TableCreated(name), Some(mut file)) => {
                        let journaled = journal_ddl(&mut file, &job.sql);
                        if journaled.is_err() {
                            // Undo the catalog insert so the unjournaled
                            // table cannot accept acknowledged commits
                            // that recovery would have no schema for.
                            // Safe under the still-held DDL lock (no
                            // concurrent CREATE can have taken an id).
                            // lint:allow(L006, undo path already reporting the original error; a detach failure leaves only a harmless orphan entry)
                            let _ = shared.db.catalog().detach_table(name);
                        }
                        journaled
                    }
                    _ => Ok(()),
                };
                match journaled {
                    // A stats snapshot rides its own frame kind, so
                    // monitoring agents can match on the kind byte.
                    Ok(()) => match output {
                        QueryOutput::Stats(snap) => Frame::Stats(snap),
                        other => Frame::ResultSet(other),
                    },
                    Err(e) => {
                        shared.stats.add(|s| &s.query_errors);
                        Frame::error(&e)
                    }
                }
            }
            Err(e) => {
                shared.stats.add(|s| &s.query_errors);
                Frame::error(&e)
            }
        };
        let _reply_span = shared.db.obs().span(Stage::QueryReply);
        if !job.conn.finish_turn(&reply) {
            // Mid-query disconnect: the commit (if any) stands, the
            // reply has no reader. The worker moves on.
            shared.stats.add(|s| &s.dropped_replies);
        }
    }
}

/// Does this statement need the DDL journal lock held across execution?
/// A conservative prefix test: false positives only serialize a
/// non-CREATE statement against DDL, never corrupt anything.
fn is_ddl(sql: &str) -> bool {
    sql.split_whitespace()
        .next()
        .is_some_and(|w| w.eq_ignore_ascii_case("create"))
}

/// Append a successful `CREATE TABLE` statement to the DDL journal and
/// fsync it, so a restarted server can rebuild the schemas for
/// [`Db::recover_with_schemas`]. Newlines are flattened — the journal is
/// one statement per line. The caller holds the journal lock *across the
/// statement's execution*, so journal order always matches catalog
/// TableId-allocation order. A write/fsync failure is returned so the
/// caller refuses to acknowledge the CREATE (an unjournaled table would
/// be silently unrecoverable after a restart). Known residual window: a
/// crash after the catalog insert but before this fsync loses the table
/// while a racing connection may already have seen it by name —
/// catalog-level DDL persistence (ROADMAP follow-up) closes it.
fn journal_ddl(file: &mut std::fs::File, sql: &str) -> Result<()> {
    let line: String = sql
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    writeln!(file, "{}", line.trim())?;
    file.sync_all()?;
    Ok(())
}

/// The DDL journal path for a data-directory prefix.
pub fn ddl_path(prefix: &Path) -> PathBuf {
    let mut s = prefix.as_os_str().to_os_string();
    s.push(".ddl");
    PathBuf::from(s)
}

/// Open a served engine at `cfg.path`, replaying the DDL journal through
/// [`Db::recover_with_schemas`] when one exists (the schemas resolve
/// their hierarchies against `hierarchies`). Without a journal — or
/// without a path at all — this is a plain [`Db::open`].
pub fn open_or_recover(
    cfg: DbConfig,
    clock: SharedClock,
    hierarchies: &HierarchyRegistry,
) -> Result<Arc<Db>> {
    let Some(path) = cfg.path.clone() else {
        return Ok(Arc::new(Db::open(cfg, clock)?));
    };
    let journal = ddl_path(&path);
    if !journal.is_file() {
        return Ok(Arc::new(Db::open(cfg, clock)?));
    }
    let mut schemas = Vec::new();
    for line in std::fs::read_to_string(&journal)?.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        schemas.push(schema_for_create(hierarchies, line)?);
    }
    Ok(Arc::new(Db::recover_with_schemas(cfg, clock, schemas)?))
}
