//! Blocking, reconnect-aware client for the InstantDB wire protocol.
//!
//! [`Client`] speaks one request/response exchange at a time over a TCP
//! connection. It is *reconnect-aware*: a transport failure marks the
//! connection dead and the next call re-dials transparently. Because the
//! server keeps per-connection session state (`DECLARE PURPOSE`), the
//! client journals every successful purpose declaration and replays it
//! after a reconnect, so a re-established session sees the same accuracy
//! levels as the one that died.
//!
//! Retry semantics are deliberately asymmetric: when a transport error
//! interrupts an exchange, the client immediately retries **only
//! replay-safe statements** (`SELECT`, `DECLARE PURPOSE`) on a fresh
//! connection. A mutating statement (`INSERT`, `DELETE`, `CREATE TABLE`)
//! may have committed server-side before the connection died — retrying
//! it could apply it twice — so the transport error is surfaced to the
//! caller, who knows whether the operation is idempotent. The connection
//! is re-established lazily on the next call either way.

use std::net::TcpStream;

use instant_common::{Error, Result};
use instant_core::query::QueryOutput;

use crate::protocol::{self, Frame};

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Largest accepted response frame.
    pub max_frame_bytes: u32,
    /// Re-dial after a transport failure (and replay the purpose
    /// journal). Off = a dead connection fails every later call.
    pub reconnect: bool,
    /// Banner sent in the handshake (shows up in server logs/tooling).
    pub banner: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            reconnect: true,
            banner: format!("instantdb-client/{}", env!("CARGO_PKG_VERSION")),
        }
    }
}

/// A blocking connection to an `instantdb-server`.
pub struct Client {
    addr: String,
    cfg: ClientConfig,
    stream: Option<TcpStream>,
    /// Successful `DECLARE PURPOSE` statements as `(purpose, sql)`,
    /// replayed in order on reconnect. Re-declaring a purpose replaces
    /// its entry (last one wins, matching server-side session
    /// semantics), so the journal is bounded by the number of distinct
    /// purposes, not the number of declarations ever issued.
    purpose_journal: Vec<(String, String)>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("connected", &self.stream.is_some())
            .finish()
    }
}

impl Client {
    /// Connect and handshake.
    pub fn connect(addr: impl Into<String>) -> Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// [`Client::connect`] with explicit tuning.
    pub fn connect_with(addr: impl Into<String>, cfg: ClientConfig) -> Result<Client> {
        let mut client = Client {
            addr: addr.into(),
            cfg,
            stream: None,
            purpose_journal: Vec::new(),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Is the underlying connection currently established?
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Execute one SQL statement and return its output. Engine errors
    /// arrive as typed [`Error`] values (the wire preserves the class);
    /// admission-control sheds surface as [`Error::ServerBusy`].
    pub fn query(&mut self, sql: &str) -> Result<QueryOutput> {
        let result = self.exchange(&Frame::Query { sql: sql.into() });
        let result = match result {
            Err(Error::Io(_)) if self.cfg.reconnect && replay_safe(sql) => {
                // The connection died mid-exchange; safe to retry only
                // statements that cannot double-apply.
                self.exchange(&Frame::Query { sql: sql.into() })
            }
            other => other,
        };
        match result? {
            Frame::ResultSet(output) => {
                if let QueryOutput::PurposeDeclared(name) = &output {
                    let key = name.to_ascii_lowercase();
                    self.purpose_journal.retain(|(n, _)| *n != key);
                    self.purpose_journal.push((key, sql.to_string()));
                }
                Ok(output)
            }
            // `SHOW STATS` answers ride a dedicated frame kind.
            Frame::Stats(snap) => Ok(QueryOutput::Stats(snap)),
            Frame::Error { class, message } => Err(Frame::to_engine_error(&class, &message)),
            other => Err(Error::Corrupt(format!(
                "unexpected response frame {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        let result = match self.exchange(&Frame::Ping) {
            Err(Error::Io(_)) if self.cfg.reconnect => self.exchange(&Frame::Ping),
            other => other,
        };
        match result? {
            Frame::Pong => Ok(()),
            Frame::Error { class, message } => Err(Frame::to_engine_error(&class, &message)),
            other => Err(Error::Corrupt(format!(
                "unexpected response frame {other:?}"
            ))),
        }
    }

    /// Graceful end of session: send `Close` and drop the connection.
    pub fn close(mut self) -> Result<()> {
        if let Some(mut stream) = self.stream.take() {
            protocol::write_frame(&mut stream, &Frame::Close)?;
        }
        Ok(())
    }

    /// One request/response over the (re-established if needed)
    /// connection. Any failure drops the connection so the next call
    /// starts from a clean dial.
    fn exchange(&mut self, frame: &Frame) -> Result<Frame> {
        let r = self.try_exchange(frame);
        if r.is_err() {
            self.stream = None;
        }
        r
    }

    fn try_exchange(&mut self, frame: &Frame) -> Result<Frame> {
        self.ensure_connected()?;
        let stream = self.stream.as_mut().expect("connected above"); // lint:allow(L001, ensure_connected() just set the stream)
        protocol::write_frame(stream, frame)?;
        match protocol::read_frame(stream, self.cfg.max_frame_bytes)? {
            Some(reply) => Ok(reply),
            None => Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Dial + handshake + purpose replay, if not already connected.
    fn ensure_connected(&mut self) -> Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        protocol::write_frame(&mut stream, &protocol::client_hello(&self.cfg.banner))?;
        match protocol::read_frame(&mut stream, self.cfg.max_frame_bytes)? {
            Some(Frame::Hello { .. }) => {}
            Some(Frame::Error { class, message }) => {
                return Err(Frame::to_engine_error(&class, &message));
            }
            Some(other) => {
                return Err(Error::Corrupt(format!(
                    "unexpected handshake reply {other:?}"
                )));
            }
            None => {
                return Err(Error::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "server closed during handshake",
                )));
            }
        }
        // Replay session state (purposes) the previous connection held —
        // directly on the fresh stream, so a flapping server can never
        // recurse through `query`'s retry path.
        for (_, sql) in &self.purpose_journal {
            protocol::write_frame(&mut stream, &Frame::Query { sql: sql.clone() })?;
            match protocol::read_frame(&mut stream, self.cfg.max_frame_bytes)? {
                Some(Frame::ResultSet(QueryOutput::PurposeDeclared(_))) => {}
                Some(Frame::Error { class, message }) => {
                    return Err(Frame::to_engine_error(&class, &message));
                }
                other => {
                    return Err(Error::Corrupt(format!(
                        "unexpected purpose-replay reply {other:?}"
                    )));
                }
            }
        }
        self.stream = Some(stream);
        Ok(())
    }
}

/// Statements safe to auto-retry after a transport failure: they cannot
/// double-apply. Everything else might have committed before the
/// connection died.
fn replay_safe(sql: &str) -> bool {
    let first = sql.split_whitespace().next().unwrap_or("");
    first.eq_ignore_ascii_case("select")
        || first.eq_ignore_ascii_case("declare")
        || first.eq_ignore_ascii_case("show")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_safety_classification() {
        assert!(replay_safe("SELECT * FROM t"));
        assert!(replay_safe("  select 1"));
        assert!(replay_safe("DECLARE PURPOSE p SET ACCURACY LEVEL d1 FOR x"));
        assert!(replay_safe("SHOW STATS"));
        assert!(!replay_safe("INSERT INTO t VALUES (1)"));
        assert!(!replay_safe("DELETE FROM t"));
        assert!(!replay_safe("CREATE TABLE t (id INT)"));
        assert!(!replay_safe(""));
    }
}
