//! The wire protocol: length-prefixed frames with a versioned handshake.
//!
//! Every frame on the wire is
//!
//! ```text
//! ┌──────────────┬───────────┬──────────────────┐
//! │ len: u32 LE  │ kind: u8  │ body (len-1 B)   │
//! └──────────────┴───────────┴──────────────────┘
//! ```
//!
//! where `len` counts the kind byte plus the body. A connection starts
//! with a `Hello` exchange: the client's `Hello` carries the 4-byte magic
//! `IDBW` and the protocol version, the server answers with its own
//! `Hello` (version + banner) or an `Error` frame and closes. After the
//! handshake the client sends `Query`/`Ping`/`Close` frames and the
//! server answers each with `ResultSet`/`Error`/`Pong`.
//!
//! `Error` frames are *typed*: they carry the engine error's
//! [`class`](instant_common::Error::class) name plus the display message,
//! and the client rebuilds the matching [`Error`] variant with
//! [`Error::from_class`] — so `SELEKT …` surfaces as [`Error::Parse`] on
//! the client exactly as it would embedded, and an admission-control shed
//! surfaces as [`Error::ServerBusy`].
//!
//! Frames larger than the reader's limit are rejected without being read
//! (the length prefix alone condemns them); since the stream position is
//! then unknowable, the connection must close after the typed error.
//! Values inside a `ResultSet` reuse the storage codec
//! ([`instant_common::codec`]) — one value encoding for heap, WAL and
//! wire.

use std::io::{Read, Write};

use instant_common::codec::{decode_row, encode_row, raw};
use instant_common::{Error, Result};
use instant_core::query::{QueryOutput, QueryResult};
use instant_obs::{HistogramSnapshot, PurposeCounters, SlowQuery, StatsSnapshot};

/// Handshake magic: identifies the InstantDB wire protocol.
pub const MAGIC: [u8; 4] = *b"IDBW";
/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u8 = 1;
/// Default cap on one frame's `len` field (kind + body).
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 4 * 1024 * 1024;

const KIND_HELLO: u8 = 1;
const KIND_QUERY: u8 = 2;
const KIND_RESULT: u8 = 3;
const KIND_ERROR: u8 = 4;
const KIND_PING: u8 = 5;
const KIND_PONG: u8 = 6;
const KIND_CLOSE: u8 = 7;
const KIND_STATS: u8 = 8;
// 9–13: the SEGS replication sub-protocol (see [`SegFrame`]). A
// replication link speaks *only* these kinds; a SQL link speaks only
// 1–8. The kind spaces are disjoint so a frame that strays onto the
// wrong link fails loudly as "unknown frame kind".
const KIND_SEG_HELLO: u8 = 9;
const KIND_SEG_META: u8 = 10;
const KIND_SEG_SEGMENT: u8 = 11;
const KIND_SEG_PROGRESS: u8 = 12;
const KIND_SEG_ACK: u8 = 13;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Handshake, both directions: magic + version + free-form banner.
    Hello { version: u8, banner: String },
    /// One SQL statement (client → server).
    Query { sql: String },
    /// A statement's output (server → client).
    ResultSet(QueryOutput),
    /// A typed error: [`Error::class`] name + display message.
    Error { class: String, message: String },
    /// Liveness probe (client → server).
    Ping,
    /// Probe answer (server → client).
    Pong,
    /// Graceful end of session (client → server); the server closes the
    /// connection without a reply.
    Close,
    /// The full observability snapshot (server → client): the server's
    /// answer to `SHOW STATS`, in a dedicated frame so monitoring agents
    /// can match on the kind byte without decoding result-set payloads.
    Stats(Box<StatsSnapshot>),
}

impl Frame {
    /// The typed-error frame for an engine error.
    pub fn error(e: &Error) -> Frame {
        Frame::Error {
            class: e.class().to_string(),
            message: e.to_string(),
        }
    }

    /// Rebuild the engine error a received [`Frame::Error`] carries.
    pub fn to_engine_error(class: &str, message: &str) -> Error {
        Error::from_class(class, message)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Frame::Hello { version, banner } => {
                out.push(KIND_HELLO);
                out.extend_from_slice(&MAGIC);
                out.push(*version);
                raw::put_bytes(&mut out, banner.as_bytes());
            }
            Frame::Query { sql } => {
                out.push(KIND_QUERY);
                raw::put_bytes(&mut out, sql.as_bytes());
            }
            Frame::ResultSet(output) => {
                out.push(KIND_RESULT);
                encode_output(output, &mut out);
            }
            Frame::Error { class, message } => {
                out.push(KIND_ERROR);
                raw::put_bytes(&mut out, class.as_bytes());
                raw::put_bytes(&mut out, message.as_bytes());
            }
            Frame::Ping => out.push(KIND_PING),
            Frame::Pong => out.push(KIND_PONG),
            Frame::Close => out.push(KIND_CLOSE),
            Frame::Stats(snap) => {
                out.push(KIND_STATS);
                encode_snapshot(snap, &mut out);
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Frame> {
        let (&kind, mut body) = payload
            .split_first()
            .ok_or_else(|| Error::Corrupt("empty frame".into()))?;
        let frame = match kind {
            KIND_HELLO => {
                let magic: Vec<u8> = take(&mut body, 4)?.to_vec();
                if magic != MAGIC {
                    return Err(Error::Corrupt("bad handshake magic".into()));
                }
                let version = take(&mut body, 1)?[0];
                Frame::Hello {
                    version,
                    banner: get_string(&mut body)?,
                }
            }
            KIND_QUERY => Frame::Query {
                sql: get_string(&mut body)?,
            },
            KIND_RESULT => Frame::ResultSet(decode_output(&mut body)?),
            KIND_ERROR => Frame::Error {
                class: get_string(&mut body)?,
                message: get_string(&mut body)?,
            },
            KIND_PING => Frame::Ping,
            KIND_PONG => Frame::Pong,
            KIND_CLOSE => Frame::Close,
            KIND_STATS => Frame::Stats(Box::new(decode_snapshot(&mut body)?)),
            other => return Err(Error::Corrupt(format!("unknown frame kind {other}"))),
        };
        if !body.is_empty() {
            return Err(Error::Corrupt(format!(
                "{} trailing bytes after frame",
                body.len()
            )));
        }
        Ok(frame)
    }
}

const OUT_TABLE_CREATED: u8 = 0;
const OUT_INSERTED: u8 = 1;
const OUT_ROWS: u8 = 2;
const OUT_DELETED: u8 = 3;
const OUT_PURPOSE: u8 = 4;
const OUT_CHECKPOINTED: u8 = 5;
const OUT_STATS: u8 = 6;

fn encode_output(output: &QueryOutput, out: &mut Vec<u8>) {
    match output {
        QueryOutput::TableCreated(name) => {
            out.push(OUT_TABLE_CREATED);
            raw::put_bytes(out, name.as_bytes());
        }
        QueryOutput::Inserted(n) => {
            out.push(OUT_INSERTED);
            raw::put_u64(out, *n as u64);
        }
        QueryOutput::Rows(r) => {
            out.push(OUT_ROWS);
            raw::put_u32(out, r.columns.len() as u32);
            for c in &r.columns {
                raw::put_bytes(out, c.as_bytes());
            }
            raw::put_u32(out, r.rows.len() as u32);
            for row in &r.rows {
                encode_row(row, out);
            }
            raw::put_bytes(out, r.plan.as_bytes());
        }
        QueryOutput::Deleted(n) => {
            out.push(OUT_DELETED);
            raw::put_u64(out, *n as u64);
        }
        QueryOutput::PurposeDeclared(name) => {
            out.push(OUT_PURPOSE);
            raw::put_bytes(out, name.as_bytes());
        }
        QueryOutput::Checkpointed => out.push(OUT_CHECKPOINTED),
        QueryOutput::Stats(snap) => {
            out.push(OUT_STATS);
            encode_snapshot(snap, out);
        }
    }
}

fn decode_output(buf: &mut &[u8]) -> Result<QueryOutput> {
    let tag = take(buf, 1)?[0];
    Ok(match tag {
        OUT_TABLE_CREATED => QueryOutput::TableCreated(get_string(buf)?),
        OUT_INSERTED => QueryOutput::Inserted(raw::get_u64(buf)? as usize),
        OUT_ROWS => {
            let ncols = raw::get_u32(buf)? as usize;
            // Clamp pre-allocations to defend against a corrupt/hostile
            // count field demanding gigabytes; pushes still grow past it.
            let mut columns = Vec::with_capacity(ncols.min(1024));
            for _ in 0..ncols {
                columns.push(get_string(buf)?);
            }
            let nrows = raw::get_u32(buf)? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1024));
            for _ in 0..nrows {
                rows.push(decode_row(buf)?);
            }
            QueryOutput::Rows(QueryResult {
                columns,
                rows,
                plan: get_string(buf)?,
            })
        }
        OUT_DELETED => QueryOutput::Deleted(raw::get_u64(buf)? as usize),
        OUT_PURPOSE => QueryOutput::PurposeDeclared(get_string(buf)?),
        OUT_CHECKPOINTED => QueryOutput::Checkpointed,
        OUT_STATS => QueryOutput::Stats(Box::new(decode_snapshot(buf)?)),
        other => return Err(Error::Corrupt(format!("unknown output tag {other}"))),
    })
}

/// Encode a [`StatsSnapshot`]. Histograms go sparse — `(bucket index,
/// count)` pairs for the non-zero buckets only — since a live snapshot
/// typically populates a handful of its 64 buckets.
fn encode_snapshot(s: &StatsSnapshot, out: &mut Vec<u8>) {
    raw::put_u32(out, s.counters.len() as u32);
    for (name, v) in &s.counters {
        raw::put_bytes(out, name.as_bytes());
        raw::put_u64(out, *v);
    }
    raw::put_u32(out, s.gauges.len() as u32);
    for (name, v) in &s.gauges {
        raw::put_bytes(out, name.as_bytes());
        raw::put_u64(out, *v as u64);
    }
    raw::put_u32(out, s.hists.len() as u32);
    for (name, h) in &s.hists {
        raw::put_bytes(out, name.as_bytes());
        encode_hist(h, out);
    }
    raw::put_u32(out, s.purposes.len() as u32);
    for (name, c) in &s.purposes {
        raw::put_bytes(out, name.as_bytes());
        raw::put_u64(out, c.queries);
        raw::put_u64(out, c.rows);
    }
    raw::put_u32(out, s.slow_queries.len() as u32);
    for q in &s.slow_queries {
        raw::put_bytes(out, q.kind.as_bytes());
        raw::put_bytes(out, q.purpose.as_bytes());
        raw::put_u64(out, q.elapsed_micros);
    }
}

fn decode_snapshot(buf: &mut &[u8]) -> Result<StatsSnapshot> {
    let mut s = StatsSnapshot::default();
    let n = raw::get_u32(buf)? as usize;
    s.counters.reserve(n.min(1024));
    for _ in 0..n {
        let name = get_string(buf)?;
        s.counters.push((name, raw::get_u64(buf)?));
    }
    let n = raw::get_u32(buf)? as usize;
    s.gauges.reserve(n.min(1024));
    for _ in 0..n {
        let name = get_string(buf)?;
        s.gauges.push((name, raw::get_u64(buf)? as i64));
    }
    let n = raw::get_u32(buf)? as usize;
    s.hists.reserve(n.min(1024));
    for _ in 0..n {
        let name = get_string(buf)?;
        s.hists.push((name, decode_hist(buf)?));
    }
    let n = raw::get_u32(buf)? as usize;
    s.purposes.reserve(n.min(1024));
    for _ in 0..n {
        let name = get_string(buf)?;
        let queries = raw::get_u64(buf)?;
        let rows = raw::get_u64(buf)?;
        s.purposes.push((name, PurposeCounters { queries, rows }));
    }
    let n = raw::get_u32(buf)? as usize;
    s.slow_queries.reserve(n.min(1024));
    for _ in 0..n {
        let kind = get_string(buf)?;
        let purpose = get_string(buf)?;
        let elapsed_micros = raw::get_u64(buf)?;
        s.slow_queries.push(SlowQuery {
            kind,
            purpose,
            elapsed_micros,
        });
    }
    Ok(s)
}

fn encode_hist(h: &HistogramSnapshot, out: &mut Vec<u8>) {
    raw::put_u64(out, h.sum_micros);
    raw::put_u64(out, h.max_micros);
    let nonzero = h.buckets.iter().filter(|b| **b != 0).count();
    raw::put_u32(out, nonzero as u32);
    for (i, b) in h.buckets.iter().enumerate() {
        if *b != 0 {
            out.push(i as u8);
            raw::put_u64(out, *b);
        }
    }
}

fn decode_hist(buf: &mut &[u8]) -> Result<HistogramSnapshot> {
    let mut h = HistogramSnapshot {
        sum_micros: raw::get_u64(buf)?,
        max_micros: raw::get_u64(buf)?,
        ..HistogramSnapshot::default()
    };
    let nonzero = raw::get_u32(buf)? as usize;
    for _ in 0..nonzero {
        let idx = take(buf, 1)?[0] as usize;
        let count = raw::get_u64(buf)?;
        let slot = h
            .buckets
            .get_mut(idx)
            .ok_or_else(|| Error::Corrupt(format!("histogram bucket index {idx} out of range")))?;
        *slot = count;
        h.count += count;
    }
    Ok(h)
}

/// Write one frame (length prefix + payload) and flush it. A payload
/// that cannot be described by the u32 length prefix is refused with
/// [`Error::Capacity`] — truncating the prefix would desynchronize the
/// peer's framing.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    write_payload(w, &frame.encode())
}

/// Length-prefix + payload + flush — the one place framing is written.
fn write_payload(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| Error::Capacity(format!("frame of {} bytes overflows u32", payload.len())))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// [`write_frame`], but a frame larger than `max_frame_bytes` is
/// replaced on the wire by a typed `capacity` [`Frame::Error`] (the
/// peer's `read_frame` would refuse the oversized frame anyway and have
/// to drop the connection — a typed error keeps it alive and pairs with
/// the request). Returns whether the original frame fit.
pub fn write_frame_capped(w: &mut impl Write, frame: &Frame, max_frame_bytes: u32) -> Result<bool> {
    let payload = frame.encode();
    if payload.len() as u64 > u64::from(max_frame_bytes) {
        let e = Error::Capacity(format!(
            "response frame of {} bytes exceeds the {max_frame_bytes}-byte limit; \
             narrow the query",
            payload.len()
        ));
        write_frame(w, &Frame::error(&e))?;
        return Ok(false);
    }
    write_payload(w, &payload)?;
    Ok(true)
}

/// Read one frame. `Ok(None)` on a clean disconnect at a frame boundary.
/// A `len` above `max_frame_bytes` yields [`Error::Capacity`] *without
/// reading the body* — the caller should answer with a typed error and
/// close, since the stream position is no longer trustworthy.
pub fn read_frame(r: &mut impl Read, max_frame_bytes: u32) -> Result<Option<Frame>> {
    let Some(len) = read_len(r)? else {
        return Ok(None);
    };
    if len == 0 {
        return Err(Error::Corrupt("zero-length frame".into()));
    }
    if len > max_frame_bytes {
        return Err(Error::Capacity(format!(
            "frame of {len} bytes exceeds the {max_frame_bytes}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| truncated_as_corrupt(e, "frame body"))?;
    Frame::decode(&payload).map(Some)
}

/// Read the 4-byte length prefix; `Ok(None)` when the peer closed before
/// sending any of it (clean end of session).
fn read_len(r: &mut impl Read) -> Result<Option<u32>> {
    let mut buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut buf[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(Error::Corrupt("disconnect inside frame length".into()));
        }
        got += n;
    }
    Ok(Some(u32::from_le_bytes(buf)))
}

fn truncated_as_corrupt(e: std::io::Error, what: &str) -> Error {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        Error::Corrupt(format!("disconnect inside {what}"))
    } else {
        Error::Io(e)
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(Error::Corrupt(format!(
            "truncated frame: need {n} bytes, have {}",
            buf.len()
        )));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_string(buf: &mut &[u8]) -> Result<String> {
    let bytes = raw::get_bytes(buf)?;
    String::from_utf8(bytes).map_err(|_| Error::Corrupt("non-utf8 string in frame".into()))
}

/// The client's opening handshake frame.
pub fn client_hello(banner: &str) -> Frame {
    Frame::Hello {
        version: PROTOCOL_VERSION,
        banner: banner.to_string(),
    }
}

/// One frame of the SEGS replication sub-protocol: sealed WAL segments
/// shipped leader → follower over the same length-prefixed framing as
/// the SQL protocol (kinds 9–13, disjoint from the SQL kinds 1–8).
///
/// The exchange is lock-step per tick:
///
/// 1. follower opens with [`SegFrame::Hello`] — magic, version, its
///    shard count and per-shard applied LSN (0s on a fresh directory);
/// 2. leader answers [`SegFrame::Meta`] — its shard count (the
///    follower's layout must match or be empty) and per-shard end LSNs;
/// 3. each tick the leader sends zero or more [`SegFrame::Segment`]s
///    (whole sealed files the follower hasn't acked), then one
///    [`SegFrame::Progress`] as the tick barrier (doubling as an idle
///    heartbeat carrying the leader's live per-shard end LSNs), then
///    reads exactly one [`SegFrame::Ack`];
/// 4. the follower's `Ack` carries, per shard, the first LSN it has
///    **not** yet made durable (fsynced into its own layout) — the
///    leader's retention hold and lag gauge key off this — plus the
///    merged LSN below which it has applied ops to its serving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SegFrame {
    /// Follower → leader handshake: protocol version + the follower's
    /// shard count and per-shard "first LSN I don't have durable yet".
    Hello {
        version: u8,
        shards: u32,
        /// Per-shard resume point: the leader re-ships from here.
        durable: Vec<u64>,
    },
    /// Leader → follower handshake answer: authoritative shard count
    /// (a non-empty follower with a different count must resync from
    /// scratch) and the leader's current per-shard stream end LSNs.
    Meta {
        shards: u32,
        /// Per-shard `next_lsn` on the leader at handshake time.
        next_lsns: Vec<u64>,
        /// The leader's DDL journal (`CREATE TABLE …` statements in
        /// creation order) — the follower replays these through its own
        /// catalog so shipped records resolve to matching table ids.
        /// Snapshotted at handshake: a table created later reaches the
        /// follower on its next reconnect (the apply loop surfaces the
        /// unknown table id and the connection is re-dialed).
        ddl: Vec<String>,
    },
    /// One whole sealed segment file, verbatim (WSEG header included).
    Segment {
        shard: u32,
        seqno: u64,
        /// First LSN inside the file — redundant with the WSEG header,
        /// kept in the frame so the follower can sanity-check resume
        /// order without parsing the body first.
        first_lsn: u64,
        bytes: Vec<u8>,
    },
    /// Tick barrier / heartbeat (leader → follower): the leader's live
    /// per-shard stream end LSNs. On an idle shard this tells the
    /// follower its copy is complete up to `next_lsns[k]` even though
    /// no sealed segment covers the tail.
    Progress { next_lsns: Vec<u64> },
    /// Follower → leader, one per tick: per-shard durable frontier
    /// (first LSN not yet fsynced on the follower) and the merged LSN
    /// below which ops are applied to the serving engine.
    Ack { durable: Vec<u64>, applied: u64 },
}

impl SegFrame {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        let put_lsns = |out: &mut Vec<u8>, lsns: &[u64]| {
            raw::put_u32(out, lsns.len() as u32);
            for l in lsns {
                raw::put_u64(out, *l);
            }
        };
        match self {
            SegFrame::Hello {
                version,
                shards,
                durable,
            } => {
                out.push(KIND_SEG_HELLO);
                out.extend_from_slice(&MAGIC);
                out.push(*version);
                raw::put_u32(&mut out, *shards);
                put_lsns(&mut out, durable);
            }
            SegFrame::Meta {
                shards,
                next_lsns,
                ddl,
            } => {
                out.push(KIND_SEG_META);
                raw::put_u32(&mut out, *shards);
                put_lsns(&mut out, next_lsns);
                raw::put_u32(&mut out, ddl.len() as u32);
                for stmt in ddl {
                    raw::put_bytes(&mut out, stmt.as_bytes());
                }
            }
            SegFrame::Segment {
                shard,
                seqno,
                first_lsn,
                bytes,
            } => {
                out.push(KIND_SEG_SEGMENT);
                raw::put_u32(&mut out, *shard);
                raw::put_u64(&mut out, *seqno);
                raw::put_u64(&mut out, *first_lsn);
                raw::put_bytes(&mut out, bytes);
            }
            SegFrame::Progress { next_lsns } => {
                out.push(KIND_SEG_PROGRESS);
                put_lsns(&mut out, next_lsns);
            }
            SegFrame::Ack { durable, applied } => {
                out.push(KIND_SEG_ACK);
                put_lsns(&mut out, durable);
                raw::put_u64(&mut out, *applied);
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<SegFrame> {
        let (&kind, mut body) = payload
            .split_first()
            .ok_or_else(|| Error::Corrupt("empty frame".into()))?;
        let get_lsns = |buf: &mut &[u8]| -> Result<Vec<u64>> {
            let n = raw::get_u32(buf)? as usize;
            let mut out = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                out.push(raw::get_u64(buf)?);
            }
            Ok(out)
        };
        let frame = match kind {
            KIND_SEG_HELLO => {
                let magic: Vec<u8> = take(&mut body, 4)?.to_vec();
                if magic != MAGIC {
                    return Err(Error::Corrupt("bad replication handshake magic".into()));
                }
                let version = take(&mut body, 1)?[0];
                let shards = raw::get_u32(&mut body)?;
                SegFrame::Hello {
                    version,
                    shards,
                    durable: get_lsns(&mut body)?,
                }
            }
            KIND_SEG_META => {
                let shards = raw::get_u32(&mut body)?;
                let next_lsns = get_lsns(&mut body)?;
                let n = raw::get_u32(&mut body)? as usize;
                let mut ddl = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ddl.push(get_string(&mut body)?);
                }
                SegFrame::Meta {
                    shards,
                    next_lsns,
                    ddl,
                }
            }
            KIND_SEG_SEGMENT => SegFrame::Segment {
                shard: raw::get_u32(&mut body)?,
                seqno: raw::get_u64(&mut body)?,
                first_lsn: raw::get_u64(&mut body)?,
                bytes: raw::get_bytes(&mut body)?,
            },
            KIND_SEG_PROGRESS => SegFrame::Progress {
                next_lsns: get_lsns(&mut body)?,
            },
            KIND_SEG_ACK => SegFrame::Ack {
                durable: get_lsns(&mut body)?,
                applied: raw::get_u64(&mut body)?,
            },
            other => {
                return Err(Error::Corrupt(format!(
                    "unknown replication frame kind {other}"
                )))
            }
        };
        if !body.is_empty() {
            return Err(Error::Corrupt(format!(
                "{} trailing bytes after replication frame",
                body.len()
            )));
        }
        Ok(frame)
    }
}

/// Write one SEGS frame (length prefix + payload) and flush it.
pub fn write_seg_frame(w: &mut impl Write, frame: &SegFrame) -> Result<()> {
    write_payload(w, &frame.encode())
}

/// Read one SEGS frame; `Ok(None)` on a clean disconnect at a frame
/// boundary. Same framing and size discipline as [`read_frame`].
pub fn read_seg_frame(r: &mut impl Read, max_frame_bytes: u32) -> Result<Option<SegFrame>> {
    let Some(len) = read_len(r)? else {
        return Ok(None);
    };
    if len == 0 {
        return Err(Error::Corrupt("zero-length frame".into()));
    }
    if len > max_frame_bytes {
        return Err(Error::Capacity(format!(
            "replication frame of {len} bytes exceeds the {max_frame_bytes}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| truncated_as_corrupt(e, "replication frame body"))?;
    SegFrame::decode(&payload).map(Some)
}

/// The follower's opening SEGS handshake frame.
pub fn seg_hello(shards: u32, durable: Vec<u64>) -> SegFrame {
    SegFrame::Hello {
        version: PROTOCOL_VERSION,
        shards,
        durable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::Value;

    fn round_trip(frame: Frame) -> Frame {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut cursor = wire.as_slice();
        let back = read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert!(cursor.is_empty(), "frame fully consumed");
        back
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            client_hello("test-client"),
            Frame::Query {
                sql: "SELECT * FROM person".into(),
            },
            Frame::ResultSet(QueryOutput::TableCreated("person".into())),
            Frame::ResultSet(QueryOutput::Inserted(3)),
            Frame::ResultSet(QueryOutput::Deleted(0)),
            Frame::ResultSet(QueryOutput::PurposeDeclared("STAT".into())),
            Frame::ResultSet(QueryOutput::Checkpointed),
            Frame::ResultSet(QueryOutput::Rows(QueryResult {
                columns: vec!["id".into(), "location".into()],
                rows: vec![
                    vec![Value::Int(1), Value::Str("Paris".into())],
                    vec![Value::Int(2), Value::Removed],
                ],
                plan: "scan(person)".into(),
            })),
            Frame::error(&Error::Parse("unexpected token".into())),
            Frame::Ping,
            Frame::Pong,
            Frame::Close,
            Frame::ResultSet(QueryOutput::Stats(Box::new(sample_snapshot()))),
            Frame::Stats(Box::new(sample_snapshot())),
            Frame::Stats(Box::default()),
        ];
        for f in frames {
            assert_eq!(round_trip(f.clone()), f, "{f:?}");
        }
    }

    fn sample_snapshot() -> StatsSnapshot {
        let mut h = HistogramSnapshot::default();
        h.buckets[0] = 1;
        h.buckets[7] = 3;
        h.buckets[63] = 2;
        h.count = 6;
        h.sum_micros = 5_000;
        h.max_micros = u64::MAX;
        let mut s = StatsSnapshot::default();
        s.counters.push(("wal.fsyncs".into(), 42));
        s.counters.push(("server.queries".into(), u64::MAX));
        s.gauges.push(("degradation.overdue_lag_us".into(), 12_345));
        s.gauges.push(("clock.skew_us".into(), -7)); // negative survives
        s.hists.push(("commit.ack".into(), h));
        s.purposes.push((
            "stat".into(),
            PurposeCounters {
                queries: 9,
                rows: 100,
            },
        ));
        s.slow_queries.push(SlowQuery {
            kind: "select".into(),
            purpose: "(none)".into(),
            elapsed_micros: 999,
        });
        s
    }

    #[test]
    fn stats_snapshot_codec_reconstructs_derived_count() {
        let snap = sample_snapshot();
        let Frame::Stats(back) = round_trip(Frame::Stats(Box::new(snap.clone()))) else {
            panic!("expected stats frame");
        };
        // The sparse codec does not ship `count`; decode re-derives it
        // from the buckets, so it must match the original exactly.
        let h = back.hist("commit.ack").expect("hist survived");
        assert_eq!(h.count, 6);
        assert_eq!(h.p50(), snap.hist("commit.ack").unwrap().p50());
        assert_eq!(back.gauge("clock.skew_us"), Some(-7));
        assert_eq!(back.counter("server.queries"), Some(u64::MAX));
    }

    #[test]
    fn corrupt_hist_bucket_index_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Stats(Box::new(sample_snapshot()))).unwrap();
        // The first bucket index byte lives right after the fixed-size
        // header fields; find and corrupt it via a targeted re-encode.
        let mut payload = vec![KIND_STATS];
        let mut s = StatsSnapshot::default();
        let mut h = HistogramSnapshot::default();
        h.buckets[1] = 5;
        h.count = 5;
        s.hists.push(("x".into(), h));
        encode_snapshot(&s, &mut payload);
        // From the end: two empty-section u32 counts (purposes, slow) =
        // 8 bytes, the bucket count u64 = 8 bytes, then the index byte.
        let idx_pos = payload.len() - 17;
        assert_eq!(payload[idx_pos], 1);
        payload[idx_pos] = 200; // out of range
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        let err = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn error_frame_preserves_type() {
        let e = Error::ServerBusy("queue full".into());
        let Frame::Error { class, message } = round_trip(Frame::error(&e)) else {
            panic!("expected error frame")
        };
        let back = Frame::to_engine_error(&class, &message);
        assert!(matches!(back, Error::ServerBusy(_)), "{back:?}");
        assert!(back.to_string().contains("queue full"));
    }

    #[test]
    fn oversized_frame_rejected_before_body_read() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        // No body at all: the length alone must condemn the frame.
        let err = read_frame(&mut wire.as_slice(), 1024).unwrap_err();
        assert!(matches!(err, Error::Capacity(_)), "{err:?}");
    }

    #[test]
    fn clean_disconnect_is_none_and_partial_is_corrupt() {
        assert!(read_frame(&mut (&[] as &[u8]), 1024).unwrap().is_none());
        let err = read_frame(&mut (&[1u8, 2][..]), 1024).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Ping).unwrap();
        wire.truncate(wire.len() - 1);
        // An empty-body frame can't be truncated below its kind byte; use
        // a query instead for a mid-body cut.
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Query {
                sql: "SELECT 1".into(),
            },
        )
        .unwrap();
        wire.truncate(wire.len() - 3);
        let err = read_frame(&mut wire.as_slice(), 1024).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn seg_frames_round_trip() {
        let frames = vec![
            seg_hello(4, vec![0, 7, 19, 3]),
            SegFrame::Meta {
                shards: 4,
                next_lsns: vec![10, 11, 12, u64::MAX],
                ddl: vec![
                    "CREATE TABLE person (id INT, loc TEXT DEGRADE location_gt)".into(),
                    "CREATE TABLE audit (id INT)".into(),
                ],
            },
            SegFrame::Meta {
                shards: 1,
                next_lsns: vec![0],
                ddl: Vec::new(),
            },
            SegFrame::Segment {
                shard: 2,
                seqno: 5,
                first_lsn: 4096,
                bytes: b"WSEG-and-then-some-frames".to_vec(),
            },
            SegFrame::Segment {
                shard: 0,
                seqno: 0,
                first_lsn: 0,
                bytes: Vec::new(),
            },
            SegFrame::Progress {
                next_lsns: vec![100, 200],
            },
            SegFrame::Ack {
                durable: vec![90, 180],
                applied: 170,
            },
        ];
        for f in frames {
            let mut wire = Vec::new();
            write_seg_frame(&mut wire, &f).unwrap();
            let mut cursor = wire.as_slice();
            let back = read_seg_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            assert!(cursor.is_empty(), "frame fully consumed");
            assert_eq!(back, f, "{f:?}");
        }
    }

    #[test]
    fn seg_and_sql_kind_spaces_are_disjoint() {
        // A SQL frame read by the replication reader (and vice versa)
        // must fail as an unknown kind, not silently mis-decode.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Ping).unwrap();
        let err = read_seg_frame(&mut wire.as_slice(), 1024).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");

        let mut wire = Vec::new();
        write_seg_frame(&mut wire, &SegFrame::Progress { next_lsns: vec![1] }).unwrap();
        let err = read_frame(&mut wire.as_slice(), 1024).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        // Clean disconnect is still None on the replication reader.
        assert!(read_seg_frame(&mut (&[] as &[u8]), 1024).unwrap().is_none());
    }

    #[test]
    fn bad_magic_and_unknown_kind_rejected() {
        let mut payload = vec![1u8]; // Hello kind
        payload.extend_from_slice(b"NOPE");
        payload.push(PROTOCOL_VERSION);
        raw::put_bytes(&mut payload, b"x");
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        assert!(read_frame(&mut wire.as_slice(), 1024).is_err());

        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(0xEE);
        assert!(read_frame(&mut wire.as_slice(), 1024).is_err());
    }
}
