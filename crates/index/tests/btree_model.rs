//! Property tests: the B+-tree against a `BTreeMap` reference model under
//! random interleavings of inserts, removes, lookups and range scans.

use std::collections::BTreeMap;

use instant_common::{TupleId, Value};
use instant_index::btree::BPlusTree;
use instant_index::SecondaryIndex;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u64),
    Remove(i64, u64),
    Get(i64),
    Range(i64, i64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0i64..200, 0u64..50).prop_map(|(k, t)| Op::Insert(k, t)),
        2 => (0i64..200, 0u64..50).prop_map(|(k, t)| Op::Remove(k, t)),
        2 => (0i64..200).prop_map(Op::Get),
        1 => (0i64..200, 0i64..200).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(arb_op(), 1..400)) {
        let mut tree = BPlusTree::new();
        let mut model: BTreeMap<i64, Vec<TupleId>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, t) => {
                    let tid = TupleId::unpack(t);
                    tree.insert(&Value::Int(k), tid);
                    model.entry(k).or_default().push(tid);
                }
                Op::Remove(k, t) => {
                    let tid = TupleId::unpack(t);
                    let tree_removed = tree.remove(&Value::Int(k), tid);
                    let model_removed = match model.get_mut(&k) {
                        Some(v) => match v.iter().position(|x| *x == tid) {
                            Some(i) => {
                                v.swap_remove(i);
                                if v.is_empty() {
                                    model.remove(&k);
                                }
                                true
                            }
                            None => false,
                        },
                        None => false,
                    };
                    prop_assert_eq!(tree_removed, model_removed);
                }
                Op::Get(k) => {
                    let mut got = tree.get(&Value::Int(k));
                    let mut want = model.get(&k).cloned().unwrap_or_default();
                    got.sort();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
                Op::Range(lo, hi) => {
                    let mut got = tree
                        .range(Some(&Value::Int(lo)), Some(&Value::Int(hi)))
                        .unwrap();
                    let mut want: Vec<TupleId> = model
                        .range(lo..hi)
                        .flat_map(|(_, v)| v.iter().copied())
                        .collect();
                    got.sort();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
            }
            // Global invariants after every op.
            let total: usize = model.values().map(|v| v.len()).sum();
            prop_assert_eq!(tree.len(), total);
            prop_assert_eq!(tree.distinct_keys(), model.len());
        }
        // Ordered iteration equals the model.
        let entries = tree.ordered_entries();
        let keys: Vec<i64> = entries
            .iter()
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        let want_keys: Vec<i64> = model.keys().copied().collect();
        prop_assert_eq!(keys, want_keys);
    }

    #[test]
    fn rebuild_preserves_semantics(
        inserts in proptest::collection::vec((0i64..100, 0u64..1000), 1..300),
        removes in proptest::collection::vec(any::<prop::sample::Index>(), 0..100),
    ) {
        let mut tree = BPlusTree::new();
        for (k, t) in &inserts {
            tree.insert(&Value::Int(*k), TupleId::unpack(*t));
        }
        for idx in removes {
            let (k, t) = inserts[idx.index(inserts.len())];
            tree.remove(&Value::Int(k), TupleId::unpack(t));
        }
        let before = tree.ordered_entries();
        tree.rebuild();
        prop_assert_eq!(tree.ordered_entries(), before);
    }
}
