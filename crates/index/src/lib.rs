//! # instant-index
//!
//! Indexing for degradable attributes — the paper's third challenge:
//! "data degradation changes the workload characteristics in the sense that
//! OLTP queries become less selective when applied to degradable attributes
//! and OLAP must take care of updates incurred by degradation. This
//! introduces the need for indexing techniques supporting efficiently
//! degradation."
//!
//! Three from-scratch structures behind one [`SecondaryIndex`] trait:
//!
//! * [`btree::BPlusTree`] — order-64 B+-tree with leaf links; the right
//!   tool for the *accurate* state `d0`, where the domain is wide and
//!   predicates are selective.
//! * [`bitmap::BitmapIndex`] — bitmap per distinct value; the right tool
//!   for *degraded* states, whose cardinality collapses (7 addresses → 2
//!   countries in Fig. 1) and whose queries touch large fractions of the
//!   store.
//! * [`hash::HashIndex`] — equality-only baseline.
//!
//! [`multilevel::MultiLevelIndex`] is the degradation-aware composite: one
//! structure per accuracy level (B+-tree at `d0`, bitmaps above), kept
//! consistent by the degradation step's `migrate` call. Experiment E9
//! compares all of them against sequential scans across accuracy levels and
//! selectivities.

pub mod bitmap;
pub mod btree;
pub mod hash;
pub mod multilevel;

use instant_common::{TupleId, Value};

/// A secondary index mapping attribute values to tuple ids.
pub trait SecondaryIndex: Send + Sync + std::fmt::Debug {
    /// Register `tid` under `key`.
    fn insert(&mut self, key: &Value, tid: TupleId);

    /// Remove `tid` from `key`'s postings. Returns whether it was present.
    fn remove(&mut self, key: &Value, tid: TupleId) -> bool;

    /// Tuples whose key equals `key` (per [`Value::compare`] semantics).
    fn get(&self, key: &Value) -> Vec<TupleId>;

    /// Tuples with `lo <= key < hi` (either bound optional). Implementations
    /// that cannot range-scan return `None` and the planner falls back.
    fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Option<Vec<TupleId>>;

    /// Total postings (tuple references) stored.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct keys.
    fn distinct_keys(&self) -> usize;
}
