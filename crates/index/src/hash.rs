//! Equality-only hash index (baseline).
//!
//! The classical OLTP choice for selective equality predicates on the
//! accurate state. It cannot serve range predicates (`range` → `None`),
//! which matters at degraded levels where interval semantics dominate —
//! one of the reasons the multilevel composite exists.

use std::collections::HashMap;

use instant_common::codec::encode_value;
use instant_common::{TupleId, Value};

use crate::SecondaryIndex;

/// Hash index over encoded value keys.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: HashMap<Vec<u8>, Vec<TupleId>>,
    len: usize,
}

impl HashIndex {
    pub fn new() -> HashIndex {
        HashIndex::default()
    }
}

fn key_bytes(v: &Value) -> Vec<u8> {
    let mut k = Vec::with_capacity(16);
    encode_value(v, &mut k);
    k
}

impl SecondaryIndex for HashIndex {
    fn insert(&mut self, key: &Value, tid: TupleId) {
        self.map.entry(key_bytes(key)).or_default().push(tid);
        self.len += 1;
    }

    fn remove(&mut self, key: &Value, tid: TupleId) -> bool {
        let k = key_bytes(key);
        if let Some(postings) = self.map.get_mut(&k) {
            if let Some(pos) = postings.iter().position(|t| *t == tid) {
                postings.swap_remove(pos);
                self.len -= 1;
                if postings.is_empty() {
                    self.map.remove(&k);
                }
                return true;
            }
        }
        false
    }

    fn get(&self, key: &Value) -> Vec<TupleId> {
        self.map.get(&key_bytes(key)).cloned().unwrap_or_default()
    }

    fn range(&self, _lo: Option<&Value>, _hi: Option<&Value>) -> Option<Vec<TupleId>> {
        None // hash indexes cannot range-scan
    }

    fn len(&self) -> usize {
        self.len
    }

    fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u64) -> TupleId {
        TupleId::unpack(n)
    }

    #[test]
    fn insert_get_remove() {
        let mut idx = HashIndex::new();
        idx.insert(&Value::Str("Paris".into()), tid(1));
        idx.insert(&Value::Str("Paris".into()), tid(2));
        idx.insert(&Value::Str("Lyon".into()), tid(3));
        assert_eq!(idx.get(&Value::Str("Paris".into())).len(), 2);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert!(idx.remove(&Value::Str("Paris".into()), tid(1)));
        assert_eq!(idx.get(&Value::Str("Paris".into())), vec![tid(2)]);
        assert!(!idx.remove(&Value::Str("Nowhere".into()), tid(9)));
    }

    #[test]
    fn no_range_support() {
        let mut idx = HashIndex::new();
        idx.insert(&Value::Int(1), tid(1));
        assert!(idx
            .range(Some(&Value::Int(0)), Some(&Value::Int(9)))
            .is_none());
    }

    #[test]
    fn distinct_value_types_do_not_collide() {
        let mut idx = HashIndex::new();
        idx.insert(&Value::Int(1), tid(1));
        idx.insert(&Value::Str("1".into()), tid(2));
        idx.insert(&Value::Range { lo: 1, hi: 2 }, tid(3));
        assert_eq!(idx.get(&Value::Int(1)), vec![tid(1)]);
        assert_eq!(idx.get(&Value::Str("1".into())), vec![tid(2)]);
        assert_eq!(idx.get(&Value::Range { lo: 1, hi: 2 }), vec![tid(3)]);
    }

    #[test]
    fn empty_key_cleanup() {
        let mut idx = HashIndex::new();
        idx.insert(&Value::Int(9), tid(1));
        idx.remove(&Value::Int(9), tid(1));
        assert_eq!(idx.distinct_keys(), 0);
        assert!(idx.is_empty());
    }
}
