//! Arena-based B+-tree with duplicate support and leaf links.
//!
//! Keys are [`Value`]s ordered by [`Value::compare`]; each key holds a
//! postings list of tuple ids (secondary-index semantics). Nodes live in a
//! `Vec` arena addressed by `u32`, which sidesteps ownership cycles for the
//! leaf chain and keeps the structure cache-friendly.
//!
//! Deletion removes postings and, when a key's postings empty, unlinks the
//! key from its leaf **without rebalancing** (lazy deletion). Degradation
//! workloads delete monotonically by age, so underfull leaves are transient
//! and the occasional `rebuild()` (vacuum) restores tightness; the trade-off
//! is documented in DESIGN.md's ablation notes.

use std::cmp::Ordering;

use instant_common::{TupleId, Value};

use crate::SecondaryIndex;

/// Max keys per node. 64 keeps internal nodes within a cache line or two
/// of `Value` headers while exercising real splits in tests.
const ORDER: usize = 64;
const NIL: u32 = u32::MAX;

#[derive(Debug)]
enum Node {
    Internal {
        /// Separator keys; `children.len() == keys.len() + 1`.
        keys: Vec<Value>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<Value>,
        postings: Vec<Vec<TupleId>>,
        next: u32,
    },
}

/// A B+-tree secondary index.
#[derive(Debug)]
pub struct BPlusTree {
    arena: Vec<Node>,
    root: u32,
    len: usize,
    distinct: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    pub fn new() -> BPlusTree {
        BPlusTree {
            arena: vec![Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
                next: NIL,
            }],
            root: 0,
            len: 0,
            distinct: 0,
        }
    }

    fn alloc(&mut self, node: Node) -> u32 {
        self.arena.push(node);
        (self.arena.len() - 1) as u32
    }

    /// Height of the tree (1 = root is a leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut cur = self.root;
        loop {
            match &self.arena[cur as usize] {
                Node::Internal { children, .. } => {
                    cur = children[0];
                    h += 1;
                }
                Node::Leaf { .. } => return h,
            }
        }
    }

    /// Walk to the leaf that should hold `key`, recording the path.
    fn find_leaf(&self, key: &Value) -> (u32, Vec<(u32, usize)>) {
        let mut path = Vec::new();
        let mut cur = self.root;
        loop {
            match &self.arena[cur as usize] {
                Node::Internal { keys, children } => {
                    // Child index = number of separators <= key. Separators
                    // equal to the key route right (leaf split convention:
                    // the separator is the first key of the right sibling).
                    let idx = match keys.binary_search_by(|k| {
                        match k.compare(key) {
                            Ordering::Greater => Ordering::Greater,
                            _ => Ordering::Less, // equal routes right
                        }
                    }) {
                        Ok(i) | Err(i) => i,
                    }
                    .min(children.len() - 1);
                    path.push((cur, idx));
                    cur = children[idx];
                }
                Node::Leaf { .. } => return (cur, path),
            }
        }
    }

    /// Insert, splitting up the path as needed.
    fn insert_impl(&mut self, key: &Value, tid: TupleId) {
        let (leaf_id, path) = self.find_leaf(key);
        // Insert into leaf.
        let need_split = {
            let Node::Leaf { keys, postings, .. } = &mut self.arena[leaf_id as usize] else {
                unreachable!()
            };
            match keys.binary_search_by(|k| k.compare(key)) {
                Ok(i) => {
                    postings[i].push(tid);
                }
                Err(i) => {
                    keys.insert(i, key.clone());
                    postings.insert(i, vec![tid]);
                    self.distinct += 1;
                }
            }
            keys.len() > ORDER
        };
        self.len += 1;
        if !need_split {
            return;
        }
        // Split leaf.
        let (sep, new_id) = {
            let Node::Leaf {
                keys,
                postings,
                next,
            } = &mut self.arena[leaf_id as usize]
            else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid);
            let right_postings = postings.split_off(mid);
            let sep = right_keys[0].clone();
            let right_next = *next;
            let new_node = Node::Leaf {
                keys: right_keys,
                postings: right_postings,
                next: right_next,
            };
            (sep, new_node)
        };
        let new_id = self.alloc(new_id);
        if let Node::Leaf { next, .. } = &mut self.arena[leaf_id as usize] {
            *next = new_id;
        }
        self.insert_into_parent(path, leaf_id, sep, new_id);
    }

    fn insert_into_parent(
        &mut self,
        mut path: Vec<(u32, usize)>,
        left: u32,
        sep: Value,
        right: u32,
    ) {
        match path.pop() {
            None => {
                // New root.
                let new_root = self.alloc(Node::Internal {
                    keys: vec![sep],
                    children: vec![left, right],
                });
                self.root = new_root;
            }
            Some((parent, child_idx)) => {
                let need_split = {
                    let Node::Internal { keys, children } = &mut self.arena[parent as usize] else {
                        unreachable!()
                    };
                    keys.insert(child_idx, sep);
                    children.insert(child_idx + 1, right);
                    keys.len() > ORDER
                };
                if !need_split {
                    return;
                }
                // Split internal node.
                let (up_sep, new_node) = {
                    let Node::Internal { keys, children } = &mut self.arena[parent as usize] else {
                        unreachable!()
                    };
                    let mid = keys.len() / 2;
                    let up_sep = keys[mid].clone();
                    let right_keys = keys.split_off(mid + 1);
                    keys.pop(); // the separator moves up
                    let right_children = children.split_off(mid + 1);
                    (
                        up_sep,
                        Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    )
                };
                let new_id = self.alloc(new_node);
                self.insert_into_parent(path, parent, up_sep, new_id);
            }
        }
    }

    /// Leftmost leaf (for full scans).
    fn first_leaf(&self) -> u32 {
        let mut cur = self.root;
        loop {
            match &self.arena[cur as usize] {
                Node::Internal { children, .. } => cur = children[0],
                Node::Leaf { .. } => return cur,
            }
        }
    }

    /// All postings in key order (debug / verification).
    pub fn ordered_entries(&self) -> Vec<(Value, Vec<TupleId>)> {
        let mut out = Vec::new();
        let mut cur = self.first_leaf();
        while cur != NIL {
            let Node::Leaf {
                keys,
                postings,
                next,
            } = &self.arena[cur as usize]
            else {
                unreachable!()
            };
            for (k, p) in keys.iter().zip(postings) {
                if !p.is_empty() {
                    out.push((k.clone(), p.clone()));
                }
            }
            cur = *next;
        }
        out
    }

    /// Rebuild the tree (vacuum after heavy deletion).
    pub fn rebuild(&mut self) {
        let entries = self.ordered_entries();
        *self = BPlusTree::new();
        for (k, postings) in entries {
            for tid in postings {
                self.insert(&k, tid);
            }
        }
    }

    /// Memory-resident node count (for the ablation bench).
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }
}

impl SecondaryIndex for BPlusTree {
    fn insert(&mut self, key: &Value, tid: TupleId) {
        self.insert_impl(key, tid);
    }

    fn remove(&mut self, key: &Value, tid: TupleId) -> bool {
        let (leaf_id, _) = self.find_leaf(key);
        let Node::Leaf { keys, postings, .. } = &mut self.arena[leaf_id as usize] else {
            unreachable!()
        };
        if let Ok(i) = keys.binary_search_by(|k| k.compare(key)) {
            if let Some(pos) = postings[i].iter().position(|t| *t == tid) {
                postings[i].swap_remove(pos);
                self.len -= 1;
                if postings[i].is_empty() {
                    keys.remove(i);
                    postings.remove(i);
                    self.distinct -= 1;
                }
                return true;
            }
        }
        false
    }

    fn get(&self, key: &Value) -> Vec<TupleId> {
        let (leaf_id, _) = self.find_leaf(key);
        let Node::Leaf { keys, postings, .. } = &self.arena[leaf_id as usize] else {
            unreachable!()
        };
        match keys.binary_search_by(|k| k.compare(key)) {
            Ok(i) => postings[i].clone(),
            Err(_) => Vec::new(),
        }
    }

    fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Option<Vec<TupleId>> {
        let mut out = Vec::new();
        let mut cur = match lo {
            Some(lo) => self.find_leaf(lo).0,
            None => self.first_leaf(),
        };
        'walk: while cur != NIL {
            let Node::Leaf {
                keys,
                postings,
                next,
            } = &self.arena[cur as usize]
            else {
                unreachable!()
            };
            for (k, p) in keys.iter().zip(postings) {
                if let Some(lo) = lo {
                    if k.compare(lo) == Ordering::Less {
                        continue;
                    }
                }
                if let Some(hi) = hi {
                    if k.compare(hi) != Ordering::Less {
                        break 'walk;
                    }
                }
                out.extend_from_slice(p);
            }
            cur = *next;
        }
        Some(out)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn distinct_keys(&self) -> usize {
        self.distinct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tid(n: u64) -> TupleId {
        TupleId::unpack(n)
    }

    #[test]
    fn insert_get_basic() {
        let mut t = BPlusTree::new();
        t.insert(&Value::Int(5), tid(1));
        t.insert(&Value::Int(3), tid(2));
        t.insert(&Value::Int(5), tid(3));
        assert_eq!(t.get(&Value::Int(5)), vec![tid(1), tid(3)]);
        assert_eq!(t.get(&Value::Int(3)), vec![tid(2)]);
        assert!(t.get(&Value::Int(4)).is_empty());
        assert_eq!(t.len(), 3);
        assert_eq!(t.distinct_keys(), 2);
    }

    #[test]
    fn many_inserts_force_splits_and_stay_ordered() {
        let mut t = BPlusTree::new();
        let n = 5000;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 2654435761u64) % n;
            t.insert(&Value::Int(k as i64), tid(k));
        }
        assert!(t.height() > 1, "5000 keys must split the root");
        let entries = t.ordered_entries();
        assert_eq!(entries.len(), n as usize);
        for (i, (k, _)) in entries.iter().enumerate() {
            assert_eq!(k, &Value::Int(i as i64), "keys must come back sorted");
        }
    }

    #[test]
    fn matches_model_btreemap() {
        let mut t = BPlusTree::new();
        let mut model: BTreeMap<i64, Vec<TupleId>> = BTreeMap::new();
        let mut x = 12345u64;
        for i in 0..3000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 33) as i64 % 500;
            t.insert(&Value::Int(k), tid(i));
            model.entry(k).or_default().push(tid(i));
        }
        for (k, v) in &model {
            let mut got = t.get(&Value::Int(*k));
            let mut want = v.clone();
            got.sort();
            want.sort();
            assert_eq!(got, want, "key {k}");
        }
        assert_eq!(t.len(), 3000);
    }

    #[test]
    fn range_scan_semantics() {
        let mut t = BPlusTree::new();
        for i in 0..200 {
            t.insert(&Value::Int(i), tid(i as u64));
        }
        let got = t
            .range(Some(&Value::Int(50)), Some(&Value::Int(60)))
            .unwrap();
        let want: Vec<TupleId> = (50..60).map(|i| tid(i as u64)).collect();
        assert_eq!(got, want, "lo inclusive, hi exclusive");
        // Open bounds.
        assert_eq!(t.range(None, Some(&Value::Int(3))).unwrap().len(), 3);
        assert_eq!(t.range(Some(&Value::Int(197)), None).unwrap().len(), 3);
        assert_eq!(t.range(None, None).unwrap().len(), 200);
    }

    #[test]
    fn remove_postings_and_keys() {
        let mut t = BPlusTree::new();
        t.insert(&Value::Int(1), tid(10));
        t.insert(&Value::Int(1), tid(11));
        assert!(t.remove(&Value::Int(1), tid(10)));
        assert_eq!(t.get(&Value::Int(1)), vec![tid(11)]);
        assert!(!t.remove(&Value::Int(1), tid(10)), "double remove is false");
        assert!(t.remove(&Value::Int(1), tid(11)));
        assert!(t.get(&Value::Int(1)).is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.distinct_keys(), 0);
        assert!(!t.remove(&Value::Int(99), tid(1)), "absent key");
    }

    #[test]
    fn string_keys_work() {
        let mut t = BPlusTree::new();
        for city in ["Paris", "Lyon", "Enschede", "Amsterdam", "Versailles"] {
            t.insert(&Value::Str(city.into()), tid(city.len() as u64));
        }
        assert_eq!(t.get(&Value::Str("Paris".into())), vec![tid(5)]);
        let range = t
            .range(
                Some(&Value::Str("Amsterdam".into())),
                Some(&Value::Str("Lyon".into())),
            )
            .unwrap();
        assert_eq!(range.len(), 2); // Amsterdam, Enschede
    }

    #[test]
    fn rebuild_preserves_content_and_shrinks() {
        let mut t = BPlusTree::new();
        for i in 0..2000 {
            t.insert(&Value::Int(i), tid(i as u64));
        }
        for i in 0..1900 {
            t.remove(&Value::Int(i), tid(i as u64));
        }
        let nodes_before = t.node_count();
        t.rebuild();
        assert!(t.node_count() < nodes_before, "rebuild must shrink arena");
        assert_eq!(t.len(), 100);
        for i in 1900..2000 {
            assert_eq!(t.get(&Value::Int(i)), vec![tid(i as u64)]);
        }
    }

    #[test]
    fn duplicate_heavy_workload() {
        // Degraded levels have few distinct keys and huge postings lists.
        let mut t = BPlusTree::new();
        for i in 0..10_000u64 {
            let country = if i % 3 == 0 { "France" } else { "Netherlands" };
            t.insert(&Value::Str(country.into()), tid(i));
        }
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.get(&Value::Str("France".into())).len(), 3334);
        assert_eq!(t.get(&Value::Str("Netherlands".into())).len(), 6666);
    }

    #[test]
    fn descending_insertion_order() {
        let mut t = BPlusTree::new();
        for i in (0..1000).rev() {
            t.insert(&Value::Int(i), tid(i as u64));
        }
        let entries = t.ordered_entries();
        assert_eq!(entries.len(), 1000);
        assert_eq!(entries[0].0, Value::Int(0));
        assert_eq!(entries[999].0, Value::Int(999));
    }
}
