//! The degradation-aware multi-level index.
//!
//! One index structure **per accuracy level** of a degradable column:
//! a B+-tree at `d0` (wide domain, selective predicates) and bitmaps at
//! every degraded level (collapsed cardinality, broad predicates). The
//! degradation step calls [`MultiLevelIndex::migrate`], which removes the
//! tuple from its old level's structure and inserts the degraded value into
//! the new level's — so at any instant, querying level `k` consults exactly
//! the tuples whose current accuracy *is* `k`, which is precisely the
//! subset-`ST_j` bookkeeping the σ/π semantics need.
//!
//! Because migration physically removes the fine-grained key from the `d0`
//! structure, the index never retains entries the store has degraded —
//! closing the "unintended retention in the indexes" channel (the forensic
//! experiment scans index memory too).

use instant_common::{Error, LevelId, Result, TupleId, Value};

use crate::bitmap::BitmapIndex;
use crate::btree::BPlusTree;
use crate::SecondaryIndex;

/// Which structure serves a given level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelStructure {
    BTree,
    Bitmap,
}

/// Per-level index composite for one degradable column.
#[derive(Debug)]
pub struct MultiLevelIndex {
    levels: Vec<Box<dyn SecondaryIndex>>,
    kinds: Vec<LevelStructure>,
}

impl MultiLevelIndex {
    /// Build with the default structure assignment: B+-tree at level 0,
    /// bitmaps at degraded levels.
    pub fn new(num_levels: u8) -> MultiLevelIndex {
        assert!(num_levels >= 1);
        let mut levels: Vec<Box<dyn SecondaryIndex>> = Vec::with_capacity(num_levels as usize);
        let mut kinds = Vec::with_capacity(num_levels as usize);
        for k in 0..num_levels {
            if k == 0 {
                levels.push(Box::new(BPlusTree::new()));
                kinds.push(LevelStructure::BTree);
            } else {
                levels.push(Box::new(BitmapIndex::new()));
                kinds.push(LevelStructure::Bitmap);
            }
        }
        MultiLevelIndex { levels, kinds }
    }

    /// Build with an explicit structure per level (for the E9 ablation).
    pub fn with_structures(kinds: Vec<LevelStructure>) -> MultiLevelIndex {
        assert!(!kinds.is_empty());
        let levels = kinds
            .iter()
            .map(|k| -> Box<dyn SecondaryIndex> {
                match k {
                    LevelStructure::BTree => Box::new(BPlusTree::new()),
                    LevelStructure::Bitmap => Box::new(BitmapIndex::new()),
                }
            })
            .collect();
        MultiLevelIndex { levels, kinds }
    }

    pub fn num_levels(&self) -> u8 {
        self.levels.len() as u8
    }

    pub fn structure_at(&self, k: LevelId) -> Option<LevelStructure> {
        self.kinds.get(k.0 as usize).copied()
    }

    fn level_mut(&mut self, k: LevelId) -> Result<&mut Box<dyn SecondaryIndex>> {
        let n = self.levels.len();
        self.levels
            .get_mut(k.0 as usize)
            .ok_or_else(|| Error::Accuracy(format!("index has {n} levels, requested d{}", k.0)))
    }

    fn level(&self, k: LevelId) -> Result<&dyn SecondaryIndex> {
        self.levels
            .get(k.0 as usize)
            .map(|b| b.as_ref())
            .ok_or_else(|| {
                Error::Accuracy(format!(
                    "index has {} levels, requested d{}",
                    self.levels.len(),
                    k.0
                ))
            })
    }

    /// Register a fresh tuple at its insert level (normally `d0`).
    pub fn insert_at(&mut self, k: LevelId, key: &Value, tid: TupleId) -> Result<()> {
        self.level_mut(k)?.insert(key, tid);
        Ok(())
    }

    /// Degradation step: move `tid` from `(old_level, old_key)` to
    /// `(new_level, new_key)`. `new_level = None` removes it entirely
    /// (attribute reached ⊥ / tuple expunged).
    pub fn migrate(
        &mut self,
        old_level: LevelId,
        old_key: &Value,
        new_level: Option<LevelId>,
        new_key: Option<&Value>,
        tid: TupleId,
    ) -> Result<()> {
        let removed = self.level_mut(old_level)?.remove(old_key, tid);
        if !removed {
            return Err(Error::NotFound(format!(
                "tuple {tid} not indexed at level d{} under {old_key}",
                old_level.0
            )));
        }
        if let (Some(nl), Some(nk)) = (new_level, new_key) {
            self.level_mut(nl)?.insert(nk, tid);
        }
        Ok(())
    }

    /// Remove `tid` from `k` (user delete).
    pub fn remove_at(&mut self, k: LevelId, key: &Value, tid: TupleId) -> Result<bool> {
        Ok(self.level_mut(k)?.remove(key, tid))
    }

    /// Equality lookup at level `k` — exactly the tuples currently stored
    /// at `k` with that value.
    pub fn get_at(&self, k: LevelId, key: &Value) -> Result<Vec<TupleId>> {
        Ok(self.level(k)?.get(key))
    }

    /// Range lookup at level `k`.
    pub fn range_at(
        &self,
        k: LevelId,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Option<Vec<TupleId>>> {
        Ok(self.level(k)?.range(lo, hi))
    }

    /// Number of tuples currently indexed at each level (the level
    /// occupancy histogram reported by experiment E2/E7).
    pub fn occupancy(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.len()).collect()
    }

    /// Total entries across levels.
    pub fn len(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct keys per level.
    pub fn distinct_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.distinct_keys()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u64) -> TupleId {
        TupleId::unpack(n)
    }

    #[test]
    fn default_structure_assignment() {
        let idx = MultiLevelIndex::new(4);
        assert_eq!(idx.structure_at(LevelId(0)), Some(LevelStructure::BTree));
        assert_eq!(idx.structure_at(LevelId(1)), Some(LevelStructure::Bitmap));
        assert_eq!(idx.structure_at(LevelId(3)), Some(LevelStructure::Bitmap));
        assert_eq!(idx.structure_at(LevelId(4)), None);
    }

    #[test]
    fn insert_then_migrate_through_life_cycle() {
        let mut idx = MultiLevelIndex::new(4);
        let t = tid(7);
        let addr = Value::Str("Domaine de Voluceau".into());
        let city = Value::Str("Le Chesnay".into());
        let region = Value::Str("Ile-de-France".into());

        idx.insert_at(LevelId(0), &addr, t).unwrap();
        assert_eq!(idx.get_at(LevelId(0), &addr).unwrap(), vec![t]);
        assert_eq!(idx.occupancy(), vec![1, 0, 0, 0]);

        idx.migrate(LevelId(0), &addr, Some(LevelId(1)), Some(&city), t)
            .unwrap();
        assert!(idx.get_at(LevelId(0), &addr).unwrap().is_empty());
        assert_eq!(idx.get_at(LevelId(1), &city).unwrap(), vec![t]);
        assert_eq!(idx.occupancy(), vec![0, 1, 0, 0]);

        idx.migrate(LevelId(1), &city, Some(LevelId(2)), Some(&region), t)
            .unwrap();
        assert_eq!(idx.occupancy(), vec![0, 0, 1, 0]);

        // Final removal.
        idx.migrate(LevelId(2), &region, None, None, t).unwrap();
        assert!(idx.is_empty());
    }

    #[test]
    fn migrate_of_unindexed_tuple_errors() {
        let mut idx = MultiLevelIndex::new(2);
        let r = idx.migrate(
            LevelId(0),
            &Value::Int(1),
            Some(LevelId(1)),
            Some(&Value::Int(1)),
            tid(1),
        );
        assert!(matches!(r, Err(Error::NotFound(_))));
    }

    #[test]
    fn queries_at_level_see_only_that_level() {
        let mut idx = MultiLevelIndex::new(2);
        let fr = Value::Str("France".into());
        idx.insert_at(LevelId(0), &fr, tid(1)).unwrap();
        idx.insert_at(LevelId(1), &fr, tid(2)).unwrap();
        assert_eq!(idx.get_at(LevelId(0), &fr).unwrap(), vec![tid(1)]);
        assert_eq!(idx.get_at(LevelId(1), &fr).unwrap(), vec![tid(2)]);
    }

    #[test]
    fn range_at_btree_level_and_bitmap_level() {
        let mut idx = MultiLevelIndex::new(2);
        for i in 0..100 {
            idx.insert_at(LevelId(0), &Value::Int(i), tid(i as u64))
                .unwrap();
        }
        for i in 0..10 {
            idx.insert_at(
                LevelId(1),
                &Value::Range {
                    lo: i * 1000,
                    hi: (i + 1) * 1000,
                },
                tid(1000 + i as u64),
            )
            .unwrap();
        }
        let d0 = idx
            .range_at(LevelId(0), Some(&Value::Int(10)), Some(&Value::Int(20)))
            .unwrap()
            .unwrap();
        assert_eq!(d0.len(), 10);
        let d1 = idx
            .range_at(
                LevelId(1),
                Some(&Value::Range { lo: 2000, hi: 3000 }),
                Some(&Value::Range { lo: 5000, hi: 6000 }),
            )
            .unwrap()
            .unwrap();
        assert_eq!(d1.len(), 3);
    }

    #[test]
    fn out_of_range_level_errors() {
        let idx = MultiLevelIndex::new(2);
        assert!(idx.get_at(LevelId(5), &Value::Int(1)).is_err());
    }

    #[test]
    fn explicit_structures_honored() {
        let idx =
            MultiLevelIndex::with_structures(vec![LevelStructure::Bitmap, LevelStructure::BTree]);
        assert_eq!(idx.structure_at(LevelId(0)), Some(LevelStructure::Bitmap));
        assert_eq!(idx.structure_at(LevelId(1)), Some(LevelStructure::BTree));
    }

    #[test]
    fn occupancy_histogram_under_bulk_migration() {
        let mut idx = MultiLevelIndex::new(3);
        let v0 = Value::Int(42);
        let v1 = Value::Range { lo: 0, hi: 100 };
        for i in 0..1000u64 {
            idx.insert_at(LevelId(0), &v0, tid(i)).unwrap();
        }
        for i in 0..600u64 {
            idx.migrate(LevelId(0), &v0, Some(LevelId(1)), Some(&v1), tid(i))
                .unwrap();
        }
        assert_eq!(idx.occupancy(), vec![400, 600, 0]);
        assert_eq!(idx.len(), 1000);
        assert_eq!(idx.distinct_per_level(), vec![1, 1, 0]);
    }
}
