//! Bitmap index for low-cardinality (degraded) domains.
//!
//! Fig. 1's location domain collapses from thousands of addresses to a
//! handful of countries as tuples degrade; equality predicates at coarse
//! accuracy levels select large fractions of the store. A bitmap per
//! distinct value answers these with sequential word-AND/OR — the classical
//! OLAP trick the paper's challenge section points to ("bitmap-like
//! indexes").
//!
//! Tuple ids are mapped to dense row ordinals internally; cleared ordinals
//! are recycled via a free list, so the bitmaps stay compact under the
//! steady insert/expunge churn of a degrading store.

use std::collections::HashMap;

use instant_common::codec::encode_value;
use instant_common::{TupleId, Value};

use crate::SecondaryIndex;

/// Growable bit vector over u64 words.
#[derive(Debug, Default, Clone)]
pub struct BitVec {
    words: Vec<u64>,
    ones: usize,
}

impl BitVec {
    pub fn set(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (i % 64);
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.ones += 1;
        }
    }

    pub fn clear(&mut self, i: usize) {
        let w = i / 64;
        if w < self.words.len() {
            let mask = 1u64 << (i % 64);
            if self.words[w] & mask != 0 {
                self.words[w] &= !mask;
                self.ones -= 1;
            }
        }
    }

    pub fn get(&self, i: usize) -> bool {
        let w = i / 64;
        w < self.words.len() && self.words[w] & (1 << (i % 64)) != 0
    }

    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Indices of set bits (allocation-free word walk).
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// `self & other` (new vector).
    pub fn and(&self, other: &BitVec) -> BitVec {
        let n = self.words.len().min(other.words.len());
        let mut words = Vec::with_capacity(n);
        let mut ones = 0;
        for i in 0..n {
            let w = self.words[i] & other.words[i];
            ones += w.count_ones() as usize;
            words.push(w);
        }
        BitVec { words, ones }
    }

    /// `self | other` (new vector).
    pub fn or(&self, other: &BitVec) -> BitVec {
        let n = self.words.len().max(other.words.len());
        let mut words = Vec::with_capacity(n);
        let mut ones = 0;
        for i in 0..n {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            let w = a | b;
            ones += w.count_ones() as usize;
            words.push(w);
        }
        BitVec { words, ones }
    }
}

/// Iterator over set-bit positions.
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let b = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + b);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

fn value_key(v: &Value) -> Vec<u8> {
    let mut k = Vec::with_capacity(16);
    encode_value(v, &mut k);
    k
}

/// Bitmap index: one [`BitVec`] per distinct value.
#[derive(Debug, Default)]
pub struct BitmapIndex {
    bitmaps: HashMap<Vec<u8>, (Value, BitVec)>,
    /// ordinal -> tuple id (None = free).
    rows: Vec<Option<TupleId>>,
    /// tuple id -> ordinal.
    ordinals: HashMap<TupleId, usize>,
    free: Vec<usize>,
    len: usize,
}

impl BitmapIndex {
    pub fn new() -> BitmapIndex {
        BitmapIndex::default()
    }

    fn ordinal_for(&mut self, tid: TupleId) -> usize {
        if let Some(&o) = self.ordinals.get(&tid) {
            return o;
        }
        let o = match self.free.pop() {
            Some(o) => {
                self.rows[o] = Some(tid);
                o
            }
            None => {
                self.rows.push(Some(tid));
                self.rows.len() - 1
            }
        };
        self.ordinals.insert(tid, o);
        o
    }

    /// The raw bitmap for `key`, if any (for multi-predicate AND/OR plans).
    pub fn bitmap(&self, key: &Value) -> Option<&BitVec> {
        self.bitmaps.get(&value_key(key)).map(|(_, b)| b)
    }

    /// Materialize a bitmap into tuple ids.
    pub fn materialize(&self, bits: &BitVec) -> Vec<TupleId> {
        bits.iter_ones()
            .filter_map(|o| self.rows.get(o).copied().flatten())
            .collect()
    }

    /// Distinct values currently indexed.
    pub fn values(&self) -> Vec<Value> {
        self.bitmaps.values().map(|(v, _)| v.clone()).collect()
    }
}

impl SecondaryIndex for BitmapIndex {
    fn insert(&mut self, key: &Value, tid: TupleId) {
        let o = self.ordinal_for(tid);
        let entry = self
            .bitmaps
            .entry(value_key(key))
            .or_insert_with(|| (key.clone(), BitVec::default()));
        if !entry.1.get(o) {
            entry.1.set(o);
            self.len += 1;
        }
    }

    fn remove(&mut self, key: &Value, tid: TupleId) -> bool {
        let Some(&o) = self.ordinals.get(&tid) else {
            return false;
        };
        let k = value_key(key);
        let Some(entry) = self.bitmaps.get_mut(&k) else {
            return false;
        };
        if !entry.1.get(o) {
            return false;
        }
        entry.1.clear(o);
        self.len -= 1;
        if entry.1.count_ones() == 0 {
            self.bitmaps.remove(&k);
        }
        // Retire the ordinal if no bitmap references it any more.
        let referenced = self.bitmaps.values().any(|(_, b)| b.get(o));
        if !referenced {
            self.ordinals.remove(&tid);
            self.rows[o] = None;
            self.free.push(o);
        }
        true
    }

    fn get(&self, key: &Value) -> Vec<TupleId> {
        match self.bitmaps.get(&value_key(key)) {
            Some((_, bits)) => self.materialize(bits),
            None => Vec::new(),
        }
    }

    fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Option<Vec<TupleId>> {
        // Range over a bitmap index = OR of qualifying value bitmaps.
        // Cardinality is low by construction, so a linear pass is fine.
        let mut acc: Option<BitVec> = None;
        for (v, bits) in self.bitmaps.values() {
            if let Some(lo) = lo {
                if v.compare(lo) == std::cmp::Ordering::Less {
                    continue;
                }
            }
            if let Some(hi) = hi {
                if v.compare(hi) != std::cmp::Ordering::Less {
                    continue;
                }
            }
            acc = Some(match acc {
                Some(a) => a.or(bits),
                None => bits.clone(),
            });
        }
        Some(acc.map(|b| self.materialize(&b)).unwrap_or_default())
    }

    fn len(&self) -> usize {
        self.len
    }

    fn distinct_keys(&self) -> usize {
        self.bitmaps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u64) -> TupleId {
        TupleId::unpack(n)
    }

    #[test]
    fn bitvec_basics() {
        let mut b = BitVec::default();
        b.set(3);
        b.set(64);
        b.set(129);
        assert!(b.get(3) && b.get(64) && b.get(129));
        assert!(!b.get(4));
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 64, 129]);
        b.clear(64);
        assert_eq!(b.count_ones(), 2);
        b.set(3); // idempotent
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn bitvec_and_or() {
        let mut a = BitVec::default();
        let mut b = BitVec::default();
        a.set(1);
        a.set(100);
        b.set(100);
        b.set(200);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![100]);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 100, 200]);
    }

    #[test]
    fn insert_get_remove() {
        let mut idx = BitmapIndex::new();
        let fr = Value::Str("France".into());
        let nl = Value::Str("Netherlands".into());
        idx.insert(&fr, tid(1));
        idx.insert(&fr, tid(2));
        idx.insert(&nl, tid(3));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        let mut got = idx.get(&fr);
        got.sort();
        assert_eq!(got, vec![tid(1), tid(2)]);
        assert!(idx.remove(&fr, tid(1)));
        assert!(!idx.remove(&fr, tid(1)));
        assert_eq!(idx.get(&fr), vec![tid(2)]);
    }

    #[test]
    fn empty_bitmap_dropped_and_ordinal_recycled() {
        let mut idx = BitmapIndex::new();
        let v = Value::Int(5);
        idx.insert(&v, tid(1));
        idx.remove(&v, tid(1));
        assert_eq!(idx.distinct_keys(), 0);
        assert_eq!(idx.len(), 0);
        // Reinsert uses the freed ordinal (rows does not grow).
        idx.insert(&v, tid(2));
        assert_eq!(idx.rows.iter().flatten().count(), 1);
        assert_eq!(idx.rows.len(), 1);
    }

    #[test]
    fn range_is_or_of_value_bitmaps() {
        let mut idx = BitmapIndex::new();
        for (i, v) in [10i64, 20, 30, 40].iter().enumerate() {
            idx.insert(&Value::Int(*v), tid(i as u64));
        }
        let got = idx
            .range(Some(&Value::Int(15)), Some(&Value::Int(40)))
            .unwrap();
        let mut got = got;
        got.sort();
        assert_eq!(got, vec![tid(1), tid(2)]);
        assert_eq!(idx.range(None, None).unwrap().len(), 4);
    }

    #[test]
    fn degraded_range_values_as_keys() {
        // Degraded salary intervals are legitimate bitmap keys.
        let mut idx = BitmapIndex::new();
        let r1 = Value::Range { lo: 2000, hi: 3000 };
        let r2 = Value::Range { lo: 3000, hi: 4000 };
        for i in 0..100 {
            idx.insert(if i % 2 == 0 { &r1 } else { &r2 }, tid(i));
        }
        assert_eq!(idx.get(&r1).len(), 50);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn multi_predicate_and_via_bitmaps() {
        let mut country = BitmapIndex::new();
        let mut salary = BitmapIndex::new();
        let fr = Value::Str("France".into());
        let nl = Value::Str("NL".into());
        let band = Value::Range { lo: 2000, hi: 3000 };
        let other_band = Value::Range { lo: 3000, hi: 4000 };
        for i in 0..100u64 {
            country.insert(if i < 60 { &fr } else { &nl }, tid(i));
            salary.insert(if i % 2 == 0 { &band } else { &other_band }, tid(i));
        }
        // NOTE: AND across two indexes requires a shared ordinal space; the
        // executor uses one BitmapIndex per column of the *same table* whose
        // ordinals coincide only when built over identical insertion streams.
        // Here both saw tids 0..100 in order, so ordinals align.
        let a = country.bitmap(&fr).unwrap();
        let b = salary.bitmap(&band).unwrap();
        let both = a.and(b);
        let got = country.materialize(&both);
        assert_eq!(got.len(), 30); // 60 French, half in band
    }

    #[test]
    fn get_absent_is_empty() {
        let idx = BitmapIndex::new();
        assert!(idx.get(&Value::Int(1)).is_empty());
        assert_eq!(idx.range(None, None).unwrap(), Vec::<TupleId>::new());
    }
}
