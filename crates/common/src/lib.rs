//! # instant-common
//!
//! Foundation types shared by every crate in the InstantDB reproduction:
//!
//! * [`Value`] / [`DataType`] — the dynamic value model, including the
//!   [`Value::Range`] variant produced when numeric attributes are degraded
//!   to interval granularity (the paper's `SALARY = '2000-3000'` example).
//! * [`Timestamp`] / [`Duration`] / [`clock`] — a deterministic time
//!   abstraction. Life Cycle Policies are *time triggered*; a mock clock lets
//!   tests and benchmarks compress the paper's minutes-to-months delays.
//! * [`Error`] / [`Result`] — the unified error type.
//! * [`ids`] — strongly typed identifiers (pages, tuples, transactions…).
//! * [`codec`] — length-prefixed binary encoding used by the storage engine
//!   and the write-ahead log.

pub mod clock;
pub mod codec;
pub mod error;
pub mod ids;
pub mod time;
pub mod value;

pub use clock::{Clock, MockClock, SharedClock, SystemClock};
pub use error::{Error, Result};
pub use ids::{ColumnId, LevelId, PageId, SlotId, TableId, TupleId, TxId};
pub use time::{Duration, Timestamp};
pub use value::{DataType, Value};
