//! Clock abstraction.
//!
//! LCP transitions are *time triggered* (Section II of the paper). The engine
//! never calls the OS clock directly; it reads a [`Clock`], so the same code
//! runs against wall time in production ([`SystemClock`]) and against a
//! deterministic, fast-forwardable [`MockClock`] in tests and experiments —
//! this is how we compress the paper's "1 hour / 1 day / 1 month" delays
//! into milliseconds of test time without touching engine logic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::time::{Duration, Timestamp};

/// Source of the engine's notion of "now".
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time.
    fn now(&self) -> Timestamp;
}

/// Shared, dynamically dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock time (microseconds since the Unix epoch).
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        let micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before Unix epoch")
            .as_micros() as u64;
        Timestamp(micros)
    }
}

/// Deterministic clock advanced manually by tests / the experiment harness.
///
/// Cloning shares the underlying time source, so a clock handed to the engine
/// and a clock kept by the test observe the same advances.
#[derive(Debug, Clone, Default)]
pub struct MockClock {
    micros: Arc<AtomicU64>,
}

impl MockClock {
    /// A mock clock starting at `t`.
    pub fn starting_at(t: Timestamp) -> Self {
        MockClock {
            micros: Arc::new(AtomicU64::new(t.0)),
        }
    }

    /// A mock clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance time by `d` and return the new now.
    pub fn advance(&self, d: Duration) -> Timestamp {
        let new = self.micros.fetch_add(d.0, Ordering::SeqCst) + d.0;
        Timestamp(new)
    }

    /// Jump directly to `t`. Panics if `t` is in the past — the engine
    /// assumes monotonic time.
    pub fn set(&self, t: Timestamp) {
        let prev = self.micros.swap(t.0, Ordering::SeqCst);
        assert!(
            prev <= t.0,
            "MockClock must be monotonic: {prev} -> {}",
            t.0
        );
    }

    /// Convenience: an `Arc<dyn Clock>` view of this clock.
    pub fn shared(&self) -> SharedClock {
        Arc::new(self.clone())
    }
}

impl Clock for MockClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.micros.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_starts_at_zero_and_advances() {
        let c = MockClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        c.advance(Duration::hours(1));
        assert_eq!(c.now(), Timestamp::ZERO + Duration::hours(1));
    }

    #[test]
    fn clones_share_time() {
        let a = MockClock::new();
        let b = a.clone();
        a.advance(Duration::days(1));
        assert_eq!(b.now(), Timestamp::ZERO + Duration::days(1));
    }

    #[test]
    fn shared_trait_object_observes_advances() {
        let c = MockClock::starting_at(Timestamp::micros(5));
        let shared: SharedClock = c.shared();
        assert_eq!(shared.now(), Timestamp::micros(5));
        c.advance(Duration::micros(5));
        assert_eq!(shared.now(), Timestamp::micros(10));
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn set_rejects_going_backwards() {
        let c = MockClock::starting_at(Timestamp::micros(100));
        c.set(Timestamp::micros(50));
    }

    #[test]
    fn system_clock_is_monotone_enough() {
        let c = SystemClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(a.0 > 1_000_000_000_000_000, "expected post-2001 wall time");
    }
}
