//! Unified error type for the workspace.
//!
//! Hand-rolled (no `thiserror` in the offline crate set); the variants map
//! onto the layers of the engine so call sites can match on failure class.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// All errors surfaced by InstantDB crates.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure (disk manager, WAL file).
    Io(std::io::Error),
    /// On-disk or in-log bytes failed validation (checksum, bounds, magic).
    Corrupt(String),
    /// A named entity (table, column, tuple, policy, level) does not exist.
    NotFound(String),
    /// Lock conflict / deadlock-avoidance abort (wait-die victim).
    TxConflict(String),
    /// Transaction used incorrectly (e.g. operating after commit).
    TxState(String),
    /// SQL / policy-DSL parse failure, with position information when known.
    Parse(String),
    /// Life Cycle Policy violation (e.g. insert below the accurate state,
    /// update of a degradable attribute after commit).
    Policy(String),
    /// Schema violation (arity, type mismatch, duplicate column).
    Schema(String),
    /// Query requested an accuracy level that is not computable or defined.
    Accuracy(String),
    /// Buffer pool exhausted or page capacity exceeded.
    Capacity(String),
    /// The server shed this request under admission control (connection
    /// limit reached or the worker queue is full). Retry after backoff.
    ServerBusy(String),
    /// The endpoint serves reads only (a replication follower): the
    /// statement would mutate state and was refused. Not retryable —
    /// the same statement must be sent to the leader instead.
    ReadOnly(String),
    /// Invalid engine/server configuration, rejected before it takes
    /// effect (e.g. `DbConfig::builder().build()` validation).
    Config(String),
    /// Feature intentionally outside the reproduced model.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corrupt(m) => write!(f, "corruption detected: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::TxConflict(m) => write!(f, "transaction conflict: {m}"),
            Error::TxState(m) => write!(f, "transaction state error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Policy(m) => write!(f, "life-cycle-policy violation: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Accuracy(m) => write!(f, "accuracy level error: {m}"),
            Error::Capacity(m) => write!(f, "capacity exceeded: {m}"),
            Error::ServerBusy(m) => write!(f, "server busy: {m}"),
            Error::ReadOnly(m) => write!(f, "read-only endpoint: {m}"),
            Error::Config(m) => write!(f, "invalid configuration: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// True when retrying the operation may succeed (wait-die aborts,
    /// admission-control sheds).
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::TxConflict(_) | Error::ServerBusy(_))
    }

    /// Short machine-readable class name, used by the experiment harness.
    pub fn class(&self) -> &'static str {
        match self {
            Error::Io(_) => "io",
            Error::Corrupt(_) => "corrupt",
            Error::NotFound(_) => "not_found",
            Error::TxConflict(_) => "tx_conflict",
            Error::TxState(_) => "tx_state",
            Error::Parse(_) => "parse",
            Error::Policy(_) => "policy",
            Error::Schema(_) => "schema",
            Error::Accuracy(_) => "accuracy",
            Error::Capacity(_) => "capacity",
            Error::ServerBusy(_) => "server_busy",
            Error::ReadOnly(_) => "read_only",
            Error::Config(_) => "config",
            Error::Unsupported(_) => "unsupported",
        }
    }

    /// Reconstruct an error from its [`Error::class`] name plus a message
    /// — the inverse used by wire protocols that ship errors as
    /// `(class, message)` pairs. Unknown classes land in
    /// [`Error::Unsupported`] so a newer server never crashes an older
    /// client.
    pub fn from_class(class: &str, message: &str) -> Error {
        let m = message.to_string();
        match class {
            "io" => Error::Io(std::io::Error::other(m)),
            "corrupt" => Error::Corrupt(m),
            "not_found" => Error::NotFound(m),
            "tx_conflict" => Error::TxConflict(m),
            "tx_state" => Error::TxState(m),
            "parse" => Error::Parse(m),
            "policy" => Error::Policy(m),
            "schema" => Error::Schema(m),
            "accuracy" => Error::Accuracy(m),
            "capacity" => Error::Capacity(m),
            "server_busy" => Error::ServerBusy(m),
            "read_only" => Error::ReadOnly(m),
            "config" => Error::Config(m),
            _ => Error::Unsupported(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = Error::Policy("insert must target d0".into());
        assert!(e.to_string().contains("insert must target d0"));
        assert!(e.to_string().contains("life-cycle-policy"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert_eq!(e.class(), "io");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::TxConflict("wait-die".into()).is_retryable());
        assert!(!Error::Parse("x".into()).is_retryable());
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(Error::Accuracy("k".into()).class(), "accuracy");
        assert_eq!(Error::Corrupt("c".into()).class(), "corrupt");
        assert_eq!(Error::Capacity("c".into()).class(), "capacity");
        assert_eq!(Error::ServerBusy("q".into()).class(), "server_busy");
    }

    #[test]
    fn from_class_round_trips_every_class() {
        let all = [
            Error::Io(std::io::Error::other("x")),
            Error::Corrupt("x".into()),
            Error::NotFound("x".into()),
            Error::TxConflict("x".into()),
            Error::TxState("x".into()),
            Error::Parse("x".into()),
            Error::Policy("x".into()),
            Error::Schema("x".into()),
            Error::Accuracy("x".into()),
            Error::Capacity("x".into()),
            Error::ServerBusy("x".into()),
            Error::ReadOnly("x".into()),
            Error::Config("x".into()),
            Error::Unsupported("x".into()),
        ];
        for e in all {
            let back = Error::from_class(e.class(), "msg");
            assert_eq!(back.class(), e.class(), "{e:?}");
        }
        assert_eq!(Error::from_class("??", "m").class(), "unsupported");
    }

    #[test]
    fn server_busy_is_retryable() {
        assert!(Error::ServerBusy("shed".into()).is_retryable());
    }

    #[test]
    fn read_only_is_not_retryable_and_round_trips() {
        // A follower refusing a mutation is a *routing* error: retrying
        // the same statement against the same endpoint can never
        // succeed, so the client must not auto-retry it.
        let e = Error::ReadOnly("followers refuse INSERT".into());
        assert!(!e.is_retryable());
        assert_eq!(e.class(), "read_only");
        let back = Error::from_class(e.class(), "followers refuse INSERT");
        assert!(matches!(back, Error::ReadOnly(_)));
        assert!(back.to_string().contains("read-only endpoint"));
    }
}
