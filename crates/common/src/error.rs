//! Unified error type for the workspace.
//!
//! Hand-rolled (no `thiserror` in the offline crate set); the variants map
//! onto the layers of the engine so call sites can match on failure class.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// All errors surfaced by InstantDB crates.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure (disk manager, WAL file).
    Io(std::io::Error),
    /// On-disk or in-log bytes failed validation (checksum, bounds, magic).
    Corrupt(String),
    /// A named entity (table, column, tuple, policy, level) does not exist.
    NotFound(String),
    /// Lock conflict / deadlock-avoidance abort (wait-die victim).
    TxConflict(String),
    /// Transaction used incorrectly (e.g. operating after commit).
    TxState(String),
    /// SQL / policy-DSL parse failure, with position information when known.
    Parse(String),
    /// Life Cycle Policy violation (e.g. insert below the accurate state,
    /// update of a degradable attribute after commit).
    Policy(String),
    /// Schema violation (arity, type mismatch, duplicate column).
    Schema(String),
    /// Query requested an accuracy level that is not computable or defined.
    Accuracy(String),
    /// Buffer pool exhausted or page capacity exceeded.
    Capacity(String),
    /// Feature intentionally outside the reproduced model.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corrupt(m) => write!(f, "corruption detected: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::TxConflict(m) => write!(f, "transaction conflict: {m}"),
            Error::TxState(m) => write!(f, "transaction state error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Policy(m) => write!(f, "life-cycle-policy violation: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Accuracy(m) => write!(f, "accuracy level error: {m}"),
            Error::Capacity(m) => write!(f, "capacity exceeded: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// True when retrying the transaction may succeed (wait-die aborts).
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::TxConflict(_))
    }

    /// Short machine-readable class name, used by the experiment harness.
    pub fn class(&self) -> &'static str {
        match self {
            Error::Io(_) => "io",
            Error::Corrupt(_) => "corrupt",
            Error::NotFound(_) => "not_found",
            Error::TxConflict(_) => "tx_conflict",
            Error::TxState(_) => "tx_state",
            Error::Parse(_) => "parse",
            Error::Policy(_) => "policy",
            Error::Schema(_) => "schema",
            Error::Accuracy(_) => "accuracy",
            Error::Capacity(_) => "capacity",
            Error::Unsupported(_) => "unsupported",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = Error::Policy("insert must target d0".into());
        assert!(e.to_string().contains("insert must target d0"));
        assert!(e.to_string().contains("life-cycle-policy"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert_eq!(e.class(), "io");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::TxConflict("wait-die".into()).is_retryable());
        assert!(!Error::Parse("x".into()).is_retryable());
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(Error::Accuracy("k".into()).class(), "accuracy");
        assert_eq!(Error::Corrupt("c".into()).class(), "corrupt");
        assert_eq!(Error::Capacity("c".into()).class(), "capacity");
    }
}
