//! Length-prefixed binary codec for values and tuples.
//!
//! Used by the heap storage format and the WAL. The format is deliberately
//! simple and self-describing (1-byte tag per value) so forensic experiments
//! (`E8` in DESIGN.md) can scan raw pages for recoverable plaintext — the
//! very attack surface the paper says secure degradation must close.

use crate::error::{Error, Result};
use crate::time::Timestamp;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_TIMESTAMP: u8 = 6;
const TAG_RANGE: u8 = 7;
const TAG_REMOVED: u8 = 8;

/// Append `v`'s encoding to `out`. The inverse of [`decode_value`].
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            let bytes = s.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        Value::Timestamp(t) => {
            out.push(TAG_TIMESTAMP);
            out.extend_from_slice(&t.0.to_le_bytes());
        }
        Value::Range { lo, hi } => {
            out.push(TAG_RANGE);
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        Value::Removed => out.push(TAG_REMOVED),
    }
}

/// Decode one value from the front of `buf`, advancing it.
pub fn decode_value(buf: &mut &[u8]) -> Result<Value> {
    let tag = take(buf, 1)?[0];
    let v = match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(i64::from_le_bytes(take_arr(buf)?)),
        TAG_FLOAT => Value::Float(f64::from_le_bytes(take_arr(buf)?)),
        TAG_STR => {
            let len = u32::from_le_bytes(take_arr(buf)?) as usize;
            let bytes = take(buf, len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| Error::Corrupt("non-utf8 string payload".into()))?;
            Value::Str(s.to_string())
        }
        TAG_TIMESTAMP => Value::Timestamp(Timestamp(u64::from_le_bytes(take_arr(buf)?))),
        TAG_RANGE => {
            let lo = i64::from_le_bytes(take_arr(buf)?);
            let hi = i64::from_le_bytes(take_arr(buf)?);
            Value::Range { lo, hi }
        }
        TAG_REMOVED => Value::Removed,
        other => return Err(Error::Corrupt(format!("unknown value tag {other}"))),
    };
    Ok(v)
}

/// Encode a whole row (count-prefixed value sequence).
pub fn encode_row(values: &[Value], out: &mut Vec<u8>) {
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        encode_value(v, out);
    }
}

/// Decode a whole row produced by [`encode_row`].
pub fn decode_row(buf: &mut &[u8]) -> Result<Vec<Value>> {
    let n = u16::from_le_bytes(take_arr(buf)?) as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_value(buf)?);
    }
    Ok(values)
}

/// Convenience: encode a row into a fresh buffer.
pub fn row_bytes(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * values.len() + 2);
    encode_row(values, &mut out);
    out
}

/// Convenience: decode a full buffer as one row, requiring full consumption.
pub fn row_from_bytes(mut buf: &[u8]) -> Result<Vec<Value>> {
    let row = decode_row(&mut buf)?;
    if !buf.is_empty() {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes after row",
            buf.len()
        )));
    }
    Ok(row)
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(Error::Corrupt(format!(
            "truncated payload: need {n} bytes, have {}",
            buf.len()
        )));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn take_arr<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N]> {
    let slice = take(buf, N)?;
    let mut arr = [0u8; N];
    arr.copy_from_slice(slice);
    Ok(arr)
}

/// Write a u32/u64 little-endian helper pair used by page headers and WAL.
pub mod raw {
    use super::*;

    pub fn put_u16(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
        put_u32(out, b.len() as u32);
        out.extend_from_slice(b);
    }
    pub fn get_u16(buf: &mut &[u8]) -> Result<u16> {
        Ok(u16::from_le_bytes(take_arr(buf)?))
    }
    pub fn get_u32(buf: &mut &[u8]) -> Result<u32> {
        Ok(u32::from_le_bytes(take_arr(buf)?))
    }
    pub fn get_u64(buf: &mut &[u8]) -> Result<u64> {
        Ok(u64::from_le_bytes(take_arr(buf)?))
    }
    pub fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>> {
        let len = get_u32(buf)? as usize;
        Ok(take(buf, len)?.to_vec())
    }
}

/// FNV-1a 64-bit checksum, used by pages and WAL records.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Str("Le Chesnay".into()),
            Value::Str(String::new()),
            Value::Timestamp(Timestamp(123_456_789)),
            Value::Range { lo: 2000, hi: 3000 },
            Value::Removed,
        ]
    }

    #[test]
    fn value_round_trip() {
        for v in sample_values() {
            let mut out = Vec::new();
            encode_value(&v, &mut out);
            let mut slice = out.as_slice();
            let back = decode_value(&mut slice).unwrap();
            assert_eq!(back, v);
            assert!(slice.is_empty(), "fully consumed for {v:?}");
        }
    }

    #[test]
    fn row_round_trip() {
        let row = sample_values();
        let bytes = row_bytes(&row);
        assert_eq!(row_from_bytes(&bytes).unwrap(), row);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = row_bytes(&[Value::Int(1)]);
        bytes.push(0xAB);
        assert!(matches!(row_from_bytes(&bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn truncation_detected() {
        let bytes = row_bytes(&[Value::Str("sensitive".into())]);
        for cut in 0..bytes.len() {
            let res = row_from_bytes(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf: &[u8] = &[0xEE];
        assert!(matches!(decode_value(&mut buf), Err(Error::Corrupt(_))));
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut bytes = Vec::new();
        bytes.push(5u8); // TAG_STR
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut slice = bytes.as_slice();
        assert!(matches!(decode_value(&mut slice), Err(Error::Corrupt(_))));
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        let a = fnv1a(b"hello");
        let b = fnv1a(b"hellp");
        assert_ne!(a, b);
        assert_eq!(fnv1a(b"hello"), a);
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn raw_helpers_round_trip() {
        let mut out = Vec::new();
        raw::put_u16(&mut out, 7);
        raw::put_u32(&mut out, 99);
        raw::put_u64(&mut out, u64::MAX);
        raw::put_bytes(&mut out, b"abc");
        let mut slice = out.as_slice();
        assert_eq!(raw::get_u16(&mut slice).unwrap(), 7);
        assert_eq!(raw::get_u32(&mut slice).unwrap(), 99);
        assert_eq!(raw::get_u64(&mut slice).unwrap(), u64::MAX);
        assert_eq!(raw::get_bytes(&mut slice).unwrap(), b"abc");
        assert!(slice.is_empty());
    }
}
