//! Strongly typed identifiers.
//!
//! Newtypes rather than bare integers so that a page id can never be passed
//! where a slot id is expected. All ids are `Copy` and order/hash cheaply.

use std::fmt;

/// Identifier of a page inside a single storage file. Page 0 is the file
/// header; data pages start at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

/// Slot index inside a slotted page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u16);

/// Physical tuple address: `(page, slot)`. Stable for the life of the tuple
/// (degradation rewrites in place; expunge frees the slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId {
    pub page: PageId,
    pub slot: SlotId,
}

impl TupleId {
    pub const fn new(page: u32, slot: u16) -> Self {
        TupleId {
            page: PageId(page),
            slot: SlotId(slot),
        }
    }

    /// Pack into a u64 for index payloads: high 32 bits page, low 16 slot.
    pub const fn pack(self) -> u64 {
        ((self.page.0 as u64) << 16) | self.slot.0 as u64
    }

    /// Inverse of [`TupleId::pack`].
    pub const fn unpack(v: u64) -> Self {
        TupleId {
            page: PageId((v >> 16) as u32),
            slot: SlotId((v & 0xFFFF) as u16),
        }
    }
}

/// Transaction identifier. Also used as the wait-die priority (smaller = older).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

/// Catalog identifier of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

/// Ordinal of a column within its table schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnId(pub u16);

/// Accuracy level within a Generalization Tree / LCP.
///
/// Level 0 is the most accurate (GT leaves, LCP state `d0`); higher values
/// are coarser. This matches the paper's `d0 … dn` numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LevelId(pub u8);

impl LevelId {
    pub const ACCURATE: LevelId = LevelId(0);

    pub fn coarser(self) -> LevelId {
        LevelId(self.0 + 1)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}
impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}
impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}
impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}
impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}
impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}
impl fmt::Display for LevelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_id_pack_round_trip() {
        for (p, s) in [(0u32, 0u16), (1, 7), (u32::MAX, u16::MAX), (42, 999)] {
            let t = TupleId::new(p, s);
            assert_eq!(TupleId::unpack(t.pack()), t);
        }
    }

    #[test]
    fn pack_orders_by_page_then_slot() {
        let a = TupleId::new(1, 500).pack();
        let b = TupleId::new(2, 0).pack();
        assert!(a < b);
        let c = TupleId::new(1, 501).pack();
        assert!(a < c);
    }

    #[test]
    fn level_display_matches_paper_notation() {
        assert_eq!(LevelId(0).to_string(), "d0");
        assert_eq!(LevelId(3).to_string(), "d3");
        assert_eq!(LevelId::ACCURATE.coarser(), LevelId(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TupleId::new(3, 4).to_string(), "P3:s4");
        assert_eq!(TxId(9).to_string(), "tx9");
    }
}
