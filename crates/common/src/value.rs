//! Dynamic value model.
//!
//! Degradation generalizes values: a tree-structured domain (Fig. 1 of the
//! paper — address → city → region → country) degrades a [`Value::Str`] leaf
//! into coarser string labels; a numeric domain degrades an [`Value::Int`]
//! into widening [`Value::Range`] intervals (the paper's
//! `SALARY = '2000-3000'`). `Removed` is the post-final-state value: the
//! datum has left the database and only a typed placeholder remains until
//! the tuple itself is expunged.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};
use crate::time::Timestamp;

/// Column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Timestamp,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "TEXT",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Parse a SQL type name (case-insensitive).
    pub fn parse(s: &str) -> Result<DataType> {
        match s.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" => Ok(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Ok(DataType::Str),
            "TIMESTAMP" => Ok(DataType::Timestamp),
            other => Err(Error::Schema(format!("unknown type {other}"))),
        }
    }
}

/// A dynamically typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Timestamp(Timestamp),
    /// Half-open integer interval `[lo, hi)` — the degraded form of `Int`.
    Range {
        lo: i64,
        hi: i64,
    },
    /// The value has reached the end of its life cycle and been expunged.
    Removed,
}

impl Value {
    /// The value's runtime type, if it has one. `Null`/`Removed` are untyped.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null | Value::Removed => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            // A Range is the degraded representation of an Int column.
            Value::Range { .. } => Some(DataType::Int),
        }
    }

    /// Is this value assignable to a column of type `ty`?
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match self {
            Value::Null | Value::Removed => true,
            v => v.data_type() == Some(ty),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_removed(&self) -> bool {
        matches!(self, Value::Removed)
    }

    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(Error::Schema(format!("expected INT, got {other}"))),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::Schema(format!("expected TEXT, got {other}"))),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::Schema(format!("expected BOOL, got {other}"))),
        }
    }

    pub fn as_timestamp(&self) -> Result<Timestamp> {
        match self {
            Value::Timestamp(t) => Ok(*t),
            other => Err(Error::Schema(format!("expected TIMESTAMP, got {other}"))),
        }
    }

    /// SQL-style three-valued-logic-free comparison used by the executor.
    ///
    /// `Null` and `Removed` compare as smallest (and are normally filtered
    /// out before comparison by the accuracy semantics). A `Range` compares
    /// to an `Int` by containment ordering: equal if the int falls inside,
    /// otherwise by position. Two ranges compare by `lo`.
    pub fn compare(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) | (Removed, Removed) => Ordering::Equal,
            (Null, _) | (Removed, _) => Ordering::Less,
            (_, Null) | (_, Removed) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Range { lo, hi }, Int(v)) => {
                if v < lo {
                    Ordering::Greater
                } else if v >= hi {
                    Ordering::Less
                } else {
                    Ordering::Equal
                }
            }
            (Int(v), Range { lo, hi }) => {
                if v < lo {
                    Ordering::Less
                } else if v >= hi {
                    Ordering::Greater
                } else {
                    Ordering::Equal
                }
            }
            (Range { lo: a, hi: ah }, Range { lo: b, hi: bh }) => a.cmp(b).then(ah.cmp(bh)),
            // Heterogeneous comparisons: order by type tag for determinism.
            (a, b) => a.type_tag().cmp(&b.type_tag()),
        }
    }

    /// SQL LIKE with `%` wildcards only (the paper's example uses
    /// `LIKE "%FRANCE%"`). Case-insensitive, as the paper's upper-cased SQL
    /// suggests value matching by name.
    pub fn like(&self, pattern: &str) -> bool {
        let hay = match self {
            Value::Str(s) => s.to_ascii_uppercase(),
            _ => return false,
        };
        like_match(&hay, &pattern.to_ascii_uppercase())
    }

    fn type_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Timestamp(_) => 5,
            Value::Range { .. } => 6,
            Value::Removed => 7,
        }
    }

    /// Approximate heap + inline footprint in bytes, used by exposure metrics.
    pub fn footprint(&self) -> usize {
        match self {
            Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
            _ => std::mem::size_of::<Value>(),
        }
    }
}

/// `%`-wildcard matcher (no `_` support — outside the reproduced subset).
fn like_match(hay: &str, pattern: &str) -> bool {
    // Split on '%'; all fragments must appear in order, anchored at the ends
    // when the pattern does not start/end with '%'.
    let frags: Vec<&str> = pattern.split('%').collect();
    if frags.len() == 1 {
        return hay == pattern;
    }
    let mut pos = 0usize;
    for (i, frag) in frags.iter().enumerate() {
        if frag.is_empty() {
            continue;
        }
        match hay[pos..].find(frag) {
            Some(off) => {
                if i == 0 && off != 0 {
                    return false; // anchored prefix
                }
                pos += off + frag.len();
            }
            None => return false,
        }
    }
    if let Some(last) = frags.last() {
        if !last.is_empty() && !hay.ends_with(last) {
            return false; // anchored suffix
        }
    }
    true
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Timestamp(t) => write!(f, "{t}"),
            Value::Range { lo, hi } => write!(f, "{lo}-{hi}"),
            Value::Removed => write!(f, "<removed>"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_rules() {
        assert!(Value::Int(3).conforms_to(DataType::Int));
        assert!(Value::Range { lo: 0, hi: 10 }.conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Str));
        assert!(Value::Removed.conforms_to(DataType::Timestamp));
        assert!(!Value::Str("x".into()).conforms_to(DataType::Int));
    }

    #[test]
    fn range_int_containment_compares_equal() {
        let r = Value::Range { lo: 2000, hi: 3000 };
        assert_eq!(r.compare(&Value::Int(2500)), Ordering::Equal);
        assert_eq!(r.compare(&Value::Int(1999)), Ordering::Greater);
        assert_eq!(r.compare(&Value::Int(3000)), Ordering::Less);
        // symmetric view
        assert_eq!(Value::Int(2500).compare(&r), Ordering::Equal);
        assert_eq!(Value::Int(1000).compare(&r), Ordering::Less);
    }

    #[test]
    fn like_semantics_match_paper_example() {
        let v = Value::Str("Europe/France/Essonne".into());
        assert!(v.like("%FRANCE%"));
        assert!(v.like("EUROPE%"));
        assert!(v.like("%ESSONNE"));
        assert!(!v.like("%GERMANY%"));
        assert!(!v.like("FRANCE%")); // anchored prefix
        assert!(!v.like("%EUROPE")); // anchored suffix
        assert!(Value::Str("abc".into()).like("ABC"));
    }

    #[test]
    fn like_ordered_fragments() {
        let v = Value::Str("abxcd".into());
        assert!(v.like("%AB%CD%"));
        assert!(!v.like("%CD%AB%"));
        assert!(Value::Str("".into()).like("%"));
    }

    #[test]
    fn display_range_matches_sql_literal() {
        assert_eq!(Value::Range { lo: 2000, hi: 3000 }.to_string(), "2000-3000");
    }

    #[test]
    fn null_and_removed_sort_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::Removed];
        vals.sort_by(|a, b| a.compare(b));
        assert!(vals[0].is_null() || vals[0].is_removed());
        assert_eq!(vals[2], Value::Int(1));
    }

    #[test]
    fn accessors_enforce_type() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert!(Value::Str("s".into()).as_int().is_err());
        assert_eq!(Value::Str("s".into()).as_str().unwrap(), "s");
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::Int(1).as_timestamp().is_err());
    }

    #[test]
    fn datatype_parse_and_display() {
        assert_eq!(DataType::parse("varchar").unwrap(), DataType::Str);
        assert_eq!(DataType::parse("INTEGER").unwrap(), DataType::Int);
        assert!(DataType::parse("BLOB").is_err());
        assert_eq!(DataType::Timestamp.to_string(), "TIMESTAMP");
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Float(1.5).compare(&Value::Int(2)), Ordering::Less);
    }
}
