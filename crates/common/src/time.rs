//! Time values.
//!
//! All engine time is a [`Timestamp`]: microseconds since an arbitrary epoch.
//! The paper's LCP delays span minutes to months; [`Duration`] provides the
//! named constructors used throughout policies, tests and benchmarks.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds since epoch. The epoch is arbitrary (tests start at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

pub const MICROS_PER_MILLI: u64 = 1_000;
pub const MICROS_PER_SEC: u64 = 1_000_000;
pub const MICROS_PER_MIN: u64 = 60 * MICROS_PER_SEC;
pub const MICROS_PER_HOUR: u64 = 60 * MICROS_PER_MIN;
pub const MICROS_PER_DAY: u64 = 24 * MICROS_PER_HOUR;
/// The paper expresses delays "in terms of … months"; we fix 1 month = 30 days.
pub const MICROS_PER_MONTH: u64 = 30 * MICROS_PER_DAY;
pub const MICROS_PER_YEAR: u64 = 365 * MICROS_PER_DAY;

impl Duration {
    pub const ZERO: Duration = Duration(0);

    pub const fn micros(n: u64) -> Self {
        Duration(n)
    }
    pub const fn millis(n: u64) -> Self {
        Duration(n * MICROS_PER_MILLI)
    }
    pub const fn secs(n: u64) -> Self {
        Duration(n * MICROS_PER_SEC)
    }
    pub const fn minutes(n: u64) -> Self {
        Duration(n * MICROS_PER_MIN)
    }
    pub const fn hours(n: u64) -> Self {
        Duration(n * MICROS_PER_HOUR)
    }
    pub const fn days(n: u64) -> Self {
        Duration(n * MICROS_PER_DAY)
    }
    pub const fn months(n: u64) -> Self {
        Duration(n * MICROS_PER_MONTH)
    }
    pub const fn years(n: u64) -> Self {
        Duration(n * MICROS_PER_YEAR)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Saturating subtraction; used for lateness computation.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Integer division of durations (how many `other` fit in `self`).
    /// Not `std::ops::Div`: the quotient is a dimensionless count, not a
    /// `Duration`, and call sites should not need a trait import.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Duration) -> u64 {
        assert!(other.0 > 0, "division by zero duration");
        self.0 / other.0
    }

    /// Scale by an integer factor (saturating).
    /// Not `std::ops::Mul`: saturating semantics differ from the trait's
    /// expected exact multiplication, and call sites avoid a trait import.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Timestamp {
    pub const ZERO: Timestamp = Timestamp(0);
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    pub const fn micros(n: u64) -> Self {
        Timestamp(n)
    }

    /// Elapsed time since `earlier`; saturates to zero if `earlier` is later.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, other: Timestamp) -> Duration {
        self.since(other)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us == 0 {
            return write!(f, "0s");
        }
        if us % MICROS_PER_MONTH == 0 {
            write!(f, "{}mo", us / MICROS_PER_MONTH)
        } else if us % MICROS_PER_DAY == 0 {
            write!(f, "{}d", us / MICROS_PER_DAY)
        } else if us % MICROS_PER_HOUR == 0 {
            write!(f, "{}h", us / MICROS_PER_HOUR)
        } else if us % MICROS_PER_MIN == 0 {
            write!(f, "{}min", us / MICROS_PER_MIN)
        } else if us % MICROS_PER_SEC == 0 {
            write!(f, "{}s", us / MICROS_PER_SEC)
        } else if us % MICROS_PER_MILLI == 0 {
            write!(f, "{}ms", us / MICROS_PER_MILLI)
        } else {
            write!(f, "{}us", us)
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

/// Parse a duration literal like `10min`, `1h`, `1d`, `1mo`, `90s`, `250ms`.
///
/// Used by the policy DSL (`instant-lcp::policy`) and the SQL front end.
pub fn parse_duration(s: &str) -> Option<Duration> {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit())?;
    let (num, unit) = s.split_at(split);
    let n: u64 = num.parse().ok()?;
    match unit.trim() {
        "us" => Some(Duration::micros(n)),
        "ms" => Some(Duration::millis(n)),
        "s" | "sec" => Some(Duration::secs(n)),
        "min" | "m" => Some(Duration::minutes(n)),
        "h" | "hr" => Some(Duration::hours(n)),
        "d" | "day" => Some(Duration::days(n)),
        "mo" | "month" => Some(Duration::months(n)),
        "y" | "yr" | "year" => Some(Duration::years(n)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_compose() {
        assert_eq!(Duration::minutes(60), Duration::hours(1));
        assert_eq!(Duration::hours(24), Duration::days(1));
        assert_eq!(Duration::days(30), Duration::months(1));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::ZERO + Duration::hours(2);
        assert_eq!(t.since(Timestamp::ZERO), Duration::hours(2));
        // saturation
        assert_eq!(Timestamp::ZERO.since(t), Duration::ZERO);
        assert_eq!(t - Timestamp::ZERO, Duration::hours(2));
    }

    #[test]
    fn display_picks_best_unit() {
        assert_eq!(Duration::months(1).to_string(), "1mo");
        assert_eq!(Duration::days(2).to_string(), "2d");
        assert_eq!(Duration::hours(3).to_string(), "3h");
        assert_eq!(Duration::minutes(10).to_string(), "10min");
        assert_eq!(Duration::secs(5).to_string(), "5s");
        assert_eq!(Duration::millis(7).to_string(), "7ms");
        assert_eq!(Duration::micros(3).to_string(), "3us");
        assert_eq!(Duration::ZERO.to_string(), "0s");
    }

    #[test]
    fn parse_round_trips_display() {
        for d in [
            Duration::micros(17),
            Duration::millis(9),
            Duration::secs(30),
            Duration::minutes(10),
            Duration::hours(1),
            Duration::days(1),
            Duration::months(1),
        ] {
            assert_eq!(parse_duration(&d.to_string()), Some(d), "{d}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_duration(""), None);
        assert_eq!(parse_duration("10"), None);
        assert_eq!(parse_duration("ten minutes"), None);
        assert_eq!(parse_duration("10 fortnights"), None);
    }

    #[test]
    fn duration_div_and_mul() {
        assert_eq!(Duration::hours(3).div(Duration::minutes(30)), 6);
        assert_eq!(Duration::minutes(30).mul(2), Duration::hours(1));
    }

    #[test]
    fn lateness_via_saturating_sub() {
        let due = Duration::secs(10);
        let actual = Duration::secs(12);
        assert_eq!(actual.saturating_sub(due), Duration::secs(2));
        assert_eq!(due.saturating_sub(actual), Duration::ZERO);
    }
}
