//! End-to-end replication over real sockets: convergence, resume from
//! local segments, checkpoint truncation gated by follower acks, torn
//! leader tails, degraded replicas, and a kill -9 of the leader binary
//! mid-burst.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use instant_common::{Error, MockClock, TupleId, Value};
use instant_core::query::HierarchyRegistry;
use instant_core::tuple::StoredTuple;
use instant_core::Session;
use instant_core::{Db, DbConfig, WalMode};
use instant_lcp::gtree::location_tree_fig1;
use instant_repl::{ReplConfig, ReplListener, Replica, ReplicaConfig};
use instant_server::{Client, Server, ServerConfig};

const CREATE_PERSON: &str = "CREATE TABLE person (id INT INDEXED, \
     location TEXT DEGRADE USING location_gt \
     LCP 'address:1h -> city:1d -> region:1mo -> country:1mo' INDEXED)";

fn registry() -> HierarchyRegistry {
    let h = HierarchyRegistry::new();
    h.register("location_gt", Arc::new(location_tree_fig1()));
    h
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "instantdb-repl-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn follower_db(clock: &MockClock, degrade_to: Option<u8>) -> Arc<Db> {
    // A replica's engine writes no WAL of its own: the received segment
    // directory is its durability root.
    let mut b = DbConfig::builder().wal_mode(WalMode::Off);
    if let Some(s) = degrade_to {
        b = b.replica_degrade_to(s);
    }
    Arc::new(Db::open(b.build().unwrap(), clock.shared()).unwrap())
}

fn scan_sorted(db: &Db, table: &str) -> Vec<(TupleId, StoredTuple)> {
    let mut rows = db.catalog().get(table).unwrap().scan().unwrap();
    rows.sort_by_key(|(tid, _)| *tid);
    rows
}

/// Poll until every leader table exists on the follower with identical
/// contents (tid-for-tid). Panics with a diff on timeout.
fn wait_converged(leader: &Db, follower: &Db, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let done = leader.catalog().table_names().iter().all(|name| {
            follower.catalog().get(name).is_ok()
                && scan_sorted(leader, name) == scan_sorted(follower, name)
        });
        if done {
            return;
        }
        if Instant::now() > deadline {
            for name in leader.catalog().table_names() {
                eprintln!("leader {name}: {:?}", scan_sorted(leader, &name));
                if follower.catalog().get(&name).is_ok() {
                    eprintln!("follower {name}: {:?}", scan_sorted(follower, &name));
                } else {
                    eprintln!("follower {name}: <missing>");
                }
            }
            panic!("follower did not converge within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fast_repl_cfg(ddl: &[&str]) -> ReplConfig {
    ReplConfig {
        tick: Duration::from_millis(2),
        ddl: ddl.iter().map(|s| s.to_string()).collect(),
        ..ReplConfig::default()
    }
}

fn fast_replica_cfg(leader: &ReplListener, dir: PathBuf) -> ReplicaConfig {
    ReplicaConfig {
        leader_addr: leader.local_addr().to_string(),
        dir,
        tick: Duration::from_millis(2),
        ..ReplicaConfig::default()
    }
}

#[test]
fn follower_converges_incrementally_and_serves_read_only() {
    let clock = MockClock::new();
    let leader = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    let mut session = Session::with_registry(Arc::clone(&leader), registry());
    session.execute(CREATE_PERSON).unwrap();
    for i in 0..8 {
        session
            .execute(&format!("INSERT INTO person VALUES ({i}, '4 rue Jussieu')"))
            .unwrap();
    }

    let listener =
        ReplListener::start(Arc::clone(&leader), fast_repl_cfg(&[CREATE_PERSON])).unwrap();
    let fclock = MockClock::new();
    let fdb = follower_db(&fclock, None);
    let replica = Replica::start(
        Arc::clone(&fdb),
        registry(),
        fast_replica_cfg(&listener, tmp("conv")),
    )
    .unwrap();

    wait_converged(&leader, &fdb, Duration::from_secs(30));

    // Incremental: new commits (and a checkpoint, whose truncation must
    // be gated by this follower's retention hold) stream without a
    // reconnect.
    for i in 8..12 {
        session
            .execute(&format!(
                "INSERT INTO person VALUES ({i}, 'Rue de la Paix')"
            ))
            .unwrap();
    }
    session.execute("DELETE FROM person WHERE id = 3").unwrap();
    session.execute("CHECKPOINT").unwrap();
    for i in 12..15 {
        session
            .execute(&format!("INSERT INTO person VALUES ({i}, '4 rue Jussieu')"))
            .unwrap();
    }
    wait_converged(&leader, &fdb, Duration::from_secs(30));

    let status = replica.status();
    assert!(status.connected, "replica should still be connected");
    assert!(status.rounds > 0);
    assert!(status.applied_upto > 0);
    assert!(listener.acks() > 0);
    assert_eq!(listener.followers(), 1);

    // The follower serves SELECT / SHOW STATS and refuses mutations with
    // the typed read_only class.
    let server = Server::start(
        Arc::clone(&fdb),
        registry(),
        ServerConfig {
            read_only: true,
            degrade_every: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();
    let rows = client.query("SELECT id FROM person").unwrap().rows();
    assert_eq!(rows.rows.len(), 14); // 15 inserts - 1 delete
    let err = client
        .query("INSERT INTO person VALUES (99, 'x')")
        .unwrap_err();
    assert!(matches!(err, Error::ReadOnly(_)), "{err:?}");
    assert_eq!(err.class(), "read_only");
    client.query("SHOW STATS").unwrap();
    server.shutdown().unwrap();

    replica.stop().unwrap();
    listener.shutdown().unwrap();
}

#[test]
fn replica_restart_resumes_from_local_segments() {
    let clock = MockClock::new();
    let leader = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    let mut session = Session::with_registry(Arc::clone(&leader), registry());
    session.execute(CREATE_PERSON).unwrap();
    for i in 0..6 {
        session
            .execute(&format!(
                "INSERT INTO person VALUES ({i}, 'Rue de la Paix')"
            ))
            .unwrap();
    }

    let listener =
        ReplListener::start(Arc::clone(&leader), fast_repl_cfg(&[CREATE_PERSON])).unwrap();
    let dir = tmp("resume");

    let fclock = MockClock::new();
    let fdb1 = follower_db(&fclock, None);
    let replica1 = Replica::start(
        Arc::clone(&fdb1),
        registry(),
        fast_replica_cfg(&listener, dir.clone()),
    )
    .unwrap();
    wait_converged(&leader, &fdb1, Duration::from_secs(30));
    let durable_at_stop = replica1.stop().unwrap().durable;
    assert!(durable_at_stop.iter().any(|&l| l > 0));
    drop(fdb1);

    // More commits while the follower is down.
    for i in 6..10 {
        session
            .execute(&format!("INSERT INTO person VALUES ({i}, '4 rue Jussieu')"))
            .unwrap();
    }

    // A "restarted follower process": fresh engine, same segment dir.
    // Its Hello advertises the on-disk durable frontier, so the leader
    // resumes instead of re-shipping from LSN 0 — and the full local log
    // re-replays into the fresh heap.
    let fdb2 = follower_db(&fclock, None);
    let replica2 = Replica::start(
        Arc::clone(&fdb2),
        registry(),
        fast_replica_cfg(&listener, dir),
    )
    .unwrap();
    wait_converged(&leader, &fdb2, Duration::from_secs(30));
    let status = replica2.status();
    assert!(status
        .durable
        .iter()
        .zip(&durable_at_stop)
        .all(|(now, then)| now >= then));

    replica2.stop().unwrap();
    listener.shutdown().unwrap();
}

#[test]
fn torn_leader_tail_on_one_shard_converges_to_recovered_state() {
    let clock = MockClock::new();
    let dir = tmp("torn-leader");
    // Engine files are path-with-extension siblings: db.idb, db.wal/,
    // db.meta.
    let cfg = DbConfig::builder()
        .path(dir.join("db"))
        .wal_shards(2)
        .build()
        .unwrap();
    {
        let db = Arc::new(Db::open(cfg.clone(), clock.shared()).unwrap());
        let mut session = Session::with_registry(Arc::clone(&db), registry());
        session.execute(CREATE_PERSON).unwrap();
        for i in 0..10 {
            session
                .execute(&format!(
                    "INSERT INTO person VALUES ({i}, 'Rue de la Paix')"
                ))
                .unwrap();
        }
        // Crash: drop without checkpoint, then tear a few bytes off one
        // shard's active segment tail (a mid-write power cut).
    }
    let shard0 = dir.join("db.wal").join("shard-000");
    let mut segs: Vec<_> = std::fs::read_dir(&shard0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    let tail = segs.last().unwrap();
    let len = std::fs::metadata(tail).unwrap().len();
    assert!(len > 24, "active segment should hold records");
    let f = std::fs::OpenOptions::new().write(true).open(tail).unwrap();
    f.set_len(len - 5).unwrap();
    f.sync_all().unwrap();
    drop(f);

    // Leader recovers (the torn suffix — and any commit it straddled —
    // is gone), then starts shipping.
    let schemas = vec![instant_core::query::schema_for_create(&registry(), CREATE_PERSON).unwrap()];
    let leader = Arc::new(Db::recover_with_schemas(cfg, clock.shared(), schemas).unwrap());
    let survivors = scan_sorted(&leader, "person").len();
    assert!(survivors <= 10);

    let listener =
        ReplListener::start(Arc::clone(&leader), fast_repl_cfg(&[CREATE_PERSON])).unwrap();
    let fclock = MockClock::new();
    let fdb = follower_db(&fclock, None);
    let replica = Replica::start(
        Arc::clone(&fdb),
        registry(),
        fast_replica_cfg(&listener, tmp("torn-follower")),
    )
    .unwrap();
    wait_converged(&leader, &fdb, Duration::from_secs(30));

    // And the recovered leader keeps accepting writes that replicate.
    let mut session = Session::with_registry(Arc::clone(&leader), registry());
    session
        .execute("INSERT INTO person VALUES (777, '4 rue Jussieu')")
        .unwrap();
    wait_converged(&leader, &fdb, Duration::from_secs(30));

    replica.stop().unwrap();
    listener.shutdown().unwrap();
}

#[test]
fn degraded_replica_never_materializes_below_the_floor() {
    // Floor 2 on the location LCP 'address -> city -> region -> country'
    // means nothing more precise than a region may reach the follower
    // heap.
    const FLOOR: u8 = 2;
    let clock = MockClock::new();
    let leader = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    let mut session = Session::with_registry(Arc::clone(&leader), registry());
    session.execute(CREATE_PERSON).unwrap();
    for (i, addr) in ["4 rue Jussieu", "Rue de la Paix", "Drienerlolaan 5"]
        .iter()
        .enumerate()
    {
        session
            .execute(&format!("INSERT INTO person VALUES ({i}, '{addr}')"))
            .unwrap();
    }

    let listener =
        ReplListener::start(Arc::clone(&leader), fast_repl_cfg(&[CREATE_PERSON])).unwrap();
    let fclock = MockClock::new();
    let fdb = follower_db(&fclock, Some(FLOOR));
    let replica = Replica::start(
        Arc::clone(&fdb),
        registry(),
        fast_replica_cfg(&listener, tmp("degraded")),
    )
    .unwrap();

    // The follower's heap differs from the leader's by design, so
    // converge on row count instead of tuple equality.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if fdb.catalog().get("person").is_ok() && scan_sorted(&fdb, "person").len() == 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "degraded follower never caught up"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let leader_rows = scan_sorted(&leader, "person");
    for (tid, tuple) in scan_sorted(&fdb, "person") {
        match tuple.stages[0] {
            Some(stage) => assert!(stage >= FLOOR, "{tid:?} at stage {stage} < floor {FLOOR}"),
            None => continue, // removed outright — coarser than any floor
        }
        // The degraded image must actually have lost the precise value:
        // at floor 2 only regions (or coarser) may remain.
        let leader_tuple = &leader_rows.iter().find(|(t, _)| *t == tid).unwrap().1;
        assert_ne!(tuple.row[1], leader_tuple.row[1]);
        let coarse = [
            "Ile-de-France",
            "Auvergne-Rhone-Alpes",
            "Overijssel",
            "Noord-Holland",
            "France",
            "Netherlands",
        ];
        match &tuple.row[1] {
            Value::Str(s) => assert!(coarse.contains(&s.as_str()), "too precise: {s}"),
            Value::Removed => {}
            other => panic!("unexpected degraded value {other:?}"),
        }
    }

    // Shredding: once the follower's clock leaves the key window, every
    // earlier window's key is destroyed after the next apply round, so
    // precise history can never be re-materialized from the shipped log.
    fclock.advance(instant_common::Duration::hours(2));
    clock.advance(instant_common::Duration::hours(2));
    session
        .execute("INSERT INTO person VALUES (50, 'Science Park 123')")
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if scan_sorted(&fdb, "person").len() == 4 && fdb.keystore().live_keys() <= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "old key windows were not shredded (live_keys = {})",
            fdb.keystore().live_keys()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    replica.stop().unwrap();
    listener.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Kill the leader binary mid-burst: the follower reconnects to the
// restarted leader and converges on the recovered state.
// ---------------------------------------------------------------------

use std::io::{BufRead as _, BufReader};
use std::process::{Child, Command, Stdio};

struct Proc {
    child: Child,
    lines: BufReader<std::process::ChildStdout>,
}

impl Proc {
    fn spawn(bin: &str, args: &[&str]) -> Proc {
        let mut child = Command::new(bin)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap();
        let lines = BufReader::new(child.stdout.take().unwrap());
        Proc { child, lines }
    }

    /// Read stdout lines until one contains `marker`; return the token
    /// after "listening on ".
    fn wait_listening(&mut self, marker: &str) -> String {
        let mut line = String::new();
        loop {
            line.clear();
            assert!(
                self.lines.read_line(&mut line).unwrap() > 0,
                "process exited before printing '{marker}'"
            );
            if line.contains(marker) {
                return line
                    .rsplit("listening on ")
                    .next()
                    .unwrap()
                    .trim()
                    .to_string();
            }
        }
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn select_ids(client: &mut Client) -> Vec<i64> {
    let mut ids: Vec<i64> = client
        .query("SELECT id FROM person")
        .unwrap()
        .rows()
        .rows
        .into_iter()
        .map(|r| match r[0] {
            Value::Int(n) => n,
            ref other => panic!("unexpected id {other:?}"),
        })
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn kill_leader_midburst_follower_reconnects_and_converges() {
    let data = tmp("kill-data");
    let rdir = tmp("kill-replica");
    // The replica keeps dialing this fixed address across the leader
    // restart, so both leader incarnations must bind it.
    let repl_addr = format!("127.0.0.1:{}", 20000 + std::process::id() % 20000);

    let leader_bin = env!("CARGO_BIN_EXE_instantdb-leader");
    let replica_bin = env!("CARGO_BIN_EXE_instantdb-replica");

    let mut leader = Proc::spawn(
        leader_bin,
        &[
            "--addr",
            "127.0.0.1:0",
            "--repl-addr",
            &repl_addr,
            "--data",
            data.to_str().unwrap(),
            "--repl-tick-ms",
            "2",
            "--no-degrade",
        ],
    );
    let sql_addr = leader.wait_listening("instantdb-leader listening on ");
    leader.wait_listening("repl listening on ");

    let mut replica = Proc::spawn(
        replica_bin,
        &[
            "--leader",
            &repl_addr,
            "--dir",
            rdir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--tick-ms",
            "2",
        ],
    );
    let replica_addr = replica.wait_listening("instantdb-replica listening on ");

    let mut client = Client::connect(&sql_addr).unwrap();
    client.query(CREATE_PERSON).unwrap();
    let mut acked: Vec<i64> = Vec::new();
    for i in 0..15 {
        if client
            .query(&format!(
                "INSERT INTO person VALUES ({i}, 'Rue de la Paix')"
            ))
            .is_ok()
        {
            acked.push(i);
        }
        if i == 9 {
            // SIGKILL mid-burst: no shutdown path runs on the leader.
            leader.child.kill().unwrap();
            leader.child.wait().unwrap();
            break;
        }
    }
    drop(client);

    // Restart on the same data dir; recovery replays the DDL journal +
    // committed WAL suffix, and the follower's redial resumes shipping.
    let mut leader2 = Proc::spawn(
        leader_bin,
        &[
            "--addr",
            "127.0.0.1:0",
            "--repl-addr",
            &repl_addr,
            "--data",
            data.to_str().unwrap(),
            "--repl-tick-ms",
            "2",
            "--no-degrade",
        ],
    );
    let sql_addr2 = leader2.wait_listening("instantdb-leader listening on ");
    leader2.wait_listening("repl listening on ");

    let mut client = Client::connect(&sql_addr2).unwrap();
    for i in 100..105 {
        client
            .query(&format!("INSERT INTO person VALUES ({i}, '4 rue Jussieu')"))
            .unwrap();
        acked.push(i);
    }

    // Every acked commit was WAL-durable before its ack, so the
    // recovered leader must serve at least `acked` — and the follower
    // must converge to exactly the leader's surviving id set.
    let leader_ids = select_ids(&mut client);
    for id in &acked {
        assert!(leader_ids.contains(id), "acked id {id} lost by recovery");
    }

    let mut rclient = Client::connect(&replica_addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if select_ids(&mut rclient) == leader_ids {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never converged: leader={leader_ids:?} follower={:?}",
            select_ids(&mut rclient)
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Still read-only after all that.
    let err = rclient
        .query("INSERT INTO person VALUES (999, 'x')")
        .unwrap_err();
    assert_eq!(err.class(), "read_only");

    // Graceful stop via the control pipe would be --stdin-control; the
    // Drop impls just kill both processes.
    let _ = leader2.child.stdin.take();
    let _ = replica.child.stdin.take();
}
