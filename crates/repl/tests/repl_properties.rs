//! Replication properties, driven straight at the replay layer (no
//! sockets): a follower that applies an arbitrary stable prefix and then
//! catches up is byte-identical to one that applied everything at once —
//! and to the leader; a degraded follower never materializes a tuple
//! below its declared stage floor, for any prefix.

use std::sync::Arc;

use instant_common::{MockClock, TupleId};
use instant_core::query::HierarchyRegistry;
use instant_core::tuple::StoredTuple;
use instant_core::{Db, DbConfig, ReplicaApplyState, Session, WalMode};
use instant_lcp::gtree::location_tree_fig1;
use instant_repl::replica::stable_barrier;
use instant_wal::record::{LogRecord, Lsn};
use instant_wal::recovery::{self, Op};
use proptest::prelude::*;

const CREATE_PERSON: &str = "CREATE TABLE person (id INT INDEXED, \
     location TEXT DEGRADE USING location_gt \
     LCP 'address:1h -> city:1d -> region:1mo -> country:1mo' INDEXED)";

const ADDRS: [&str; 5] = [
    "4 rue Jussieu",
    "Rue de la Paix",
    "Drienerlolaan 5",
    "Science Park 123",
    "45 avenue des Etats-Unis",
];

fn registry() -> HierarchyRegistry {
    let h = HierarchyRegistry::new();
    h.register("location_gt", Arc::new(location_tree_fig1()));
    h
}

/// A leader with `shards` WAL shards, the given workload applied, and a
/// bootstrap retention hold so checkpoints in the workload cannot
/// truncate what an (offline) follower still needs.
fn leader_with_workload(shards: usize, workload: &[(u8, u8, u8)]) -> Arc<Db> {
    let clock = MockClock::new();
    let cfg = DbConfig::builder().wal_shards(shards).build().unwrap();
    let db = Arc::new(Db::open(cfg, clock.shared()).unwrap());
    let _hold = db
        .wal()
        .unwrap()
        .register_retention_hold(db.wal().unwrap().base_lsn());
    let mut session = Session::with_registry(Arc::clone(&db), registry());
    session.execute(CREATE_PERSON).unwrap();
    for &(op, id, addr) in workload {
        match op % 5 {
            4 => {
                session
                    .execute(&format!("DELETE FROM person WHERE id = {id}"))
                    .unwrap();
            }
            3 => {
                session.execute("CHECKPOINT").unwrap();
            }
            _ => {
                session
                    .execute(&format!(
                        "INSERT INTO person VALUES ({id}, '{}')",
                        ADDRS[addr as usize % ADDRS.len()]
                    ))
                    .unwrap();
            }
        }
    }
    db
}

fn follower_db(degrade_to: Option<u8>) -> Arc<Db> {
    let mut b = DbConfig::builder().wal_mode(WalMode::Off);
    if let Some(s) = degrade_to {
        b = b.replica_degrade_to(s);
    }
    let db = Arc::new(Db::open(b.build().unwrap(), MockClock::new().shared()).unwrap());
    let mut session = Session::with_registry(Arc::clone(&db), registry());
    session.execute(CREATE_PERSON).unwrap();
    db
}

/// Follower-style apply of everything below `barrier` (same pipeline as
/// the live replica: checkpoint-ignoring replay, then external-op apply
/// with the `applied_upto` watermark).
fn apply_below(db: &Db, merged: &[(Lsn, LogRecord)], barrier: Lsn, state: &mut ReplicaApplyState) {
    let below: Vec<(Lsn, LogRecord)> = merged
        .iter()
        .filter(|(lsn, _)| *lsn < barrier)
        .cloned()
        .collect();
    let plan = recovery::replay_all(&below, db.keystore());
    let ops: Vec<(Lsn, Op)> = plan.op_lsns.into_iter().zip(plan.ops).collect();
    db.replay_external_ops(&ops, state).unwrap();
}

fn scan_sorted(db: &Db) -> Vec<(TupleId, StoredTuple)> {
    let mut rows = db.catalog().get("person").unwrap().scan().unwrap();
    rows.sort_by_key(|(tid, _)| *tid);
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Apply an arbitrary stable prefix, then the rest — the result must
    /// equal both a one-shot full replay and the leader's own heap.
    #[test]
    fn prefix_then_rest_equals_full_replay_equals_leader(
        workload in proptest::collection::vec((any::<u8>(), 0u8..20, any::<u8>()), 1..25),
        shards in 1usize..4,
        cuts in proptest::collection::vec(0u64..1000, 3..4),
    ) {
        let leader = leader_with_workload(shards, &workload);
        let wal = leader.wal().unwrap();
        let merged = wal.iterate().unwrap();
        let full: Vec<Lsn> = (0..shards).map(|k| wal.shard(k).next_lsn()).collect();
        let cut: Vec<Lsn> = (0..shards).map(|k| cuts[k % cuts.len()] % (full[k] + 1)).collect();

        // Incremental follower: arbitrary received prefix, then catch up.
        let b1 = stable_barrier(&merged, &cut, &full);
        let b2 = stable_barrier(&merged, &full, &full);
        prop_assert_eq!(b2, Lsn::MAX, "a caught-up follower has no barrier");
        let incremental = follower_db(None);
        let mut state = ReplicaApplyState::default();
        apply_below(&incremental, &merged, b1, &mut state);
        let applied_mid = state.applied_upto;
        apply_below(&incremental, &merged, b2, &mut state);
        prop_assert!(state.applied_upto >= applied_mid);

        // One-shot follower.
        let oneshot = follower_db(None);
        apply_below(&oneshot, &merged, b2, &mut ReplicaApplyState::default());

        let want = scan_sorted(&leader);
        prop_assert_eq!(scan_sorted(&incremental), want.clone());
        prop_assert_eq!(scan_sorted(&oneshot), want);
    }

    /// Tear one shard's tail (records of still-open transactions lost),
    /// recover the leader, replay follower-style: the states agree.
    #[test]
    fn torn_tail_prefix_converges_to_recovered_leader(
        workload in proptest::collection::vec((0u8..3, 0u8..20, any::<u8>()), 1..20),
        shards in 1usize..4,
        cut in 1u64..120,
    ) {
        let leader = leader_with_workload(shards, &workload);
        let wal = leader.wal().unwrap();
        // Tear shard 0's unsynced-flush tail: drop `cut` bytes off the
        // end, exactly what a mid-write crash leaves behind.
        wal.shard(0).torn_tail(cut).unwrap();
        let merged = wal.iterate().unwrap();
        let full: Vec<Lsn> = (0..shards).map(|k| wal.shard(k).next_lsn()).collect();

        let follower = follower_db(None);
        let b = stable_barrier(&merged, &full, &full);
        prop_assert_eq!(b, Lsn::MAX);
        apply_below(&follower, &merged, b, &mut ReplicaApplyState::default());

        // The "recovered leader": one-shot replay of the same trimmed
        // log into a fresh engine (the recovery path the leader process
        // itself would run).
        let recovered = follower_db(None);
        apply_below(&recovered, &merged, Lsn::MAX, &mut ReplicaApplyState::default());
        prop_assert_eq!(scan_sorted(&follower), scan_sorted(&recovered));
    }

    /// The degraded-replica invariant holds for every prefix of every
    /// workload: nothing on the follower heap is more precise than the
    /// declared floor.
    #[test]
    fn degraded_follower_never_below_floor_for_any_prefix(
        workload in proptest::collection::vec((0u8..3, 0u8..20, any::<u8>()), 1..20),
        shards in 1usize..3,
        floor in 0u8..5,
        cuts in proptest::collection::vec(0u64..1000, 2..3),
    ) {
        let leader = leader_with_workload(shards, &workload);
        let wal = leader.wal().unwrap();
        let merged = wal.iterate().unwrap();
        let full: Vec<Lsn> = (0..shards).map(|k| wal.shard(k).next_lsn()).collect();
        let cut: Vec<Lsn> = (0..shards).map(|k| cuts[k % cuts.len()] % (full[k] + 1)).collect();

        let follower = follower_db(Some(floor));
        let mut state = ReplicaApplyState::default();
        for barrier in [stable_barrier(&merged, &cut, &full), stable_barrier(&merged, &full, &full)] {
            apply_below(&follower, &merged, barrier, &mut state);
            for (tid, tuple) in scan_sorted(&follower) {
                if let Some(stage) = tuple.stages[0] {
                    prop_assert!(
                        stage >= floor,
                        "{:?} at stage {} violates floor {}", tid, stage, floor
                    );
                }
            }
        }
        // Degradation only ever removes rows (a fully-degraded image
        // becomes an expunge), never invents them.
        prop_assert!(scan_sorted(&follower).len() <= scan_sorted(&leader).len());
    }
}
