//! # instant-repl
//!
//! Leader → follower replication for InstantDB: sealed WAL segments are
//! shipped whole-file over the SEGS sub-protocol
//! ([`instant_server::protocol::SegFrame`], kinds 9–13 on the same
//! length-prefixed framing as SQL) to read replicas that replay them
//! through the recovery path and serve SELECT / SHOW STATS while
//! refusing mutations with a typed
//! [`ReadOnly`](instant_common::Error::ReadOnly) error.
//!
//! Three layers:
//!
//! * [`leader`] — [`ReplListener`](leader::ReplListener): an accept loop
//!   plus one [`SegmentShipper`](leader::SegmentShipper) daemon per
//!   follower (on [`instant_core::DaemonCore`] scaffolding). Every tick
//!   the shipper rotates dirty actives, streams sealed segments the
//!   follower's durable frontier does not cover, sends a
//!   `Progress` barrier/heartbeat, and reads exactly one `Ack`. Each
//!   follower's ack drives a **retention hold** on the leader's
//!   [`WalSet`](instant_wal::WalSet): checkpoint truncation never
//!   deletes a sealed segment a connected follower has not fsynced yet
//!   (the hold is wired straight into
//!   [`truncate_before`](instant_wal::WalSet::truncate_before)).
//! * [`replica`] — [`Replica`](replica::Replica): dials the leader,
//!   fsyncs received segment files into its own `WalSet` layout,
//!   computes the **stable barrier** (the merged LSN below which no
//!   future record can land and no shipped transaction is still open),
//!   replays the sub-barrier stream with
//!   [`recovery::replay_all`](instant_wal::recovery::replay_all) — the
//!   checkpoint-*ignoring* variant, since a follower has no heap image
//!   for the leader's checkpoint to cut against — and applies the
//!   resulting ops through
//!   [`Db::replay_external_ops`](instant_core::Db::replay_external_ops).
//!   Reconnects with backoff; resume is per-shard by durable LSN.
//! * **Degraded views** — a replica whose engine sets
//!   [`DbConfig::replica_degrade_to`](instant_core::DbConfig) applies
//!   every shipped image **eagerly degraded** to at least that stage
//!   before it reaches the follower heap (the engine re-verifies the
//!   floor and fails `Policy` rather than store a too-precise tuple),
//!   and the replica shreds old key windows after each apply round so
//!   precise history never becomes re-materializable on the follower.
//!
//! Lock ranks: this crate owns the 700 band — follower registry 700,
//! replica progress detail 710. Both are leaf-ish: never held across
//! WAL, observability, or socket I/O calls (snapshot, release, then
//! call). The leader-side retention holds themselves live at rank 515
//! inside `instant_wal`.

pub mod leader;
pub mod replica;

pub use leader::{ReplConfig, ReplListener};
pub use replica::{Replica, ReplicaConfig, ReplicaStatus};
