//! `instantdb-leader` — an `instantdb-server` that also ships its WAL.
//!
//! ```text
//! instantdb-leader --addr 127.0.0.1:5433 --repl-addr 127.0.0.1:5434 \
//!     --data /var/lib/idb/main [--wal-shards N] [--checkpoint-every-ms N]
//!     [--degrade-every-ms N] [--repl-tick-ms N] [--stdin-control]
//! ```
//!
//! Runs the normal SQL server on `--addr` and a replication listener on
//! `--repl-addr`; any number of `instantdb-replica` processes may dial
//! the latter. `--data` is effectively required for replication to be
//! useful: the DDL journal next to it is what the handshake's schema
//! snapshot is built from. Connected (and, by default, prospective)
//! followers hold WAL retention, so checkpoint truncation never deletes
//! a segment a follower still needs.

use std::sync::Arc;

use instant_common::SystemClock;
use instant_core::query::HierarchyRegistry;
use instant_core::DbConfig;
use instant_lcp::gtree::location_tree_fig1;
use instant_repl::{ReplConfig, ReplListener};
use instant_server::{open_or_recover, Server, ServerConfig};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: instantdb-leader [--addr A] [--repl-addr A] [--data PATH] \
         [--max-conns N] [--workers N] [--wal-shards N] \
         [--checkpoint-every-ms N] [--degrade-every-ms N] [--no-degrade] \
         [--wal-retention-segments N] [--repl-tick-ms N] [--stdin-control]"
    );
    std::process::exit(2);
}

struct Args {
    addr: String,
    repl_addr: String,
    data: Option<std::path::PathBuf>,
    max_conns: usize,
    workers: usize,
    wal_shards: Option<usize>,
    checkpoint_every_ms: Option<u64>,
    degrade_every_ms: Option<u64>,
    wal_retention_segments: Option<u64>,
    repl_tick_ms: u64,
    stdin_control: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:5433".into(),
        repl_addr: "127.0.0.1:5434".into(),
        data: None,
        max_conns: 64,
        workers: 4,
        wal_shards: None,
        checkpoint_every_ms: None,
        degrade_every_ms: Some(250),
        wal_retention_segments: None,
        repl_tick_ms: 20,
        stdin_control: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--repl-addr" => args.repl_addr = value("--repl-addr"),
            "--data" => args.data = Some(value("--data").into()),
            "--max-conns" => args.max_conns = parse(&value("--max-conns"), "--max-conns"),
            "--workers" => args.workers = parse(&value("--workers"), "--workers"),
            "--wal-shards" => args.wal_shards = Some(parse(&value("--wal-shards"), "--wal-shards")),
            "--checkpoint-every-ms" => {
                args.checkpoint_every_ms = Some(parse(
                    &value("--checkpoint-every-ms"),
                    "--checkpoint-every-ms",
                ))
            }
            "--degrade-every-ms" => {
                args.degrade_every_ms =
                    Some(parse(&value("--degrade-every-ms"), "--degrade-every-ms"))
            }
            "--no-degrade" => args.degrade_every_ms = None,
            "--wal-retention-segments" => {
                args.wal_retention_segments = Some(parse(
                    &value("--wal-retention-segments"),
                    "--wal-retention-segments",
                ))
            }
            "--repl-tick-ms" => {
                args.repl_tick_ms = parse(&value("--repl-tick-ms"), "--repl-tick-ms")
            }
            "--stdin-control" => args.stdin_control = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")))
}

fn main() {
    let args = parse_args();
    let hierarchies = HierarchyRegistry::new();
    hierarchies.register("location_gt", Arc::new(location_tree_fig1()));

    let mut builder = DbConfig::builder();
    if let Some(p) = args.data.clone() {
        builder = builder.path(p);
    }
    if let Some(n) = args.wal_shards {
        builder = builder.wal_shards(n);
    }
    if let Some(ms) = args.checkpoint_every_ms {
        builder = builder.checkpoint_every(std::time::Duration::from_millis(ms));
    }
    if let Some(cap) = args.wal_retention_segments {
        builder = builder.wal_retention_segments(cap);
    }
    let db_cfg = match builder.build() {
        Ok(cfg) => cfg,
        Err(e) => usage(&e.to_string()),
    };
    let db = match open_or_recover(db_cfg, Arc::new(SystemClock), &hierarchies) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("instantdb-leader: cannot open engine: {e}");
            std::process::exit(1);
        }
    };

    let repl = match ReplListener::start(
        Arc::clone(&db),
        ReplConfig {
            addr: args.repl_addr,
            tick: std::time::Duration::from_millis(args.repl_tick_ms),
            ..ReplConfig::default()
        },
    ) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("instantdb-leader: cannot bind replication listener: {e}");
            std::process::exit(1);
        }
    };

    let server_cfg = ServerConfig {
        addr: args.addr,
        max_connections: args.max_conns,
        workers: args.workers,
        degrade_every: args.degrade_every_ms.map(std::time::Duration::from_millis),
        ..ServerConfig::default()
    };
    let server = match Server::start(db, hierarchies, server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("instantdb-leader: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    // Scripts (and the CI smoke lane) wait for these exact lines.
    println!("instantdb-leader listening on {}", server.local_addr());
    println!("instantdb-leader repl listening on {}", repl.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    if args.stdin_control {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            use std::io::BufRead as _;
            match stdin.lock().read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => match line.trim() {
                    "shutdown" | "quit" | "exit" => break,
                    "stats" => {
                        println!("{:?}", server.stats());
                        println!("followers={} acks={}", repl.followers(), repl.acks());
                        let _ = std::io::stdout().flush();
                    }
                    "stats-ndjson" => {
                        let snap = instant_core::metrics::stats_snapshot(server.db());
                        for l in snap.ndjson_lines("leader") {
                            println!("{l}");
                        }
                        println!();
                        let _ = std::io::stdout().flush();
                    }
                    "" => {}
                    other => eprintln!("instantdb-leader: unknown control '{other}'"),
                },
                Err(_) => break,
            }
        }
        // Shippers go first so their retention holds are released before
        // the engine (and its checkpoint daemon) winds down.
        if let Err(e) = repl.shutdown() {
            eprintln!("instantdb-leader: replication shutdown error: {e}");
        }
        match server.shutdown() {
            Ok(()) => println!("instantdb-leader: clean shutdown"),
            Err(e) => {
                eprintln!("instantdb-leader: shutdown error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        loop {
            std::thread::park();
        }
    }
}
