//! `instantdb-replica` — a read replica fed by an `instantdb-leader`.
//!
//! ```text
//! instantdb-replica --leader 127.0.0.1:5434 --dir /var/lib/idb/replica \
//!     [--addr 127.0.0.1:5435] [--degrade-to STAGE]
//!     [--key-seed N] [--key-window-ms N] [--stdin-control]
//! ```
//!
//! Dials the leader's replication port, fsyncs shipped WAL segments
//! under `--dir`, replays the stable prefix into a local engine, and
//! serves it read-only on `--addr`: SELECT and SHOW STATS work, every
//! mutation is refused with the typed `read_only` error class.
//! Restarting on the same `--dir` resumes from the local durable
//! frontier instead of re-shipping the whole log.
//!
//! `--degrade-to STAGE` makes this a **degraded replica**: every shipped
//! image is degraded through at least `STAGE` generalization steps
//! before it reaches the heap, and key windows behind the current one
//! are shredded after each apply round — data more precise than the
//! declared stage is never materializable on this host. `--key-seed` /
//! `--key-window-ms` must match the leader's engine configuration (the
//! defaults match the engine defaults) or sealed payloads will surface
//! as unrecoverable and be expunged.

use std::sync::Arc;

use instant_common::SystemClock;
use instant_core::query::HierarchyRegistry;
use instant_core::DbConfig;
use instant_lcp::gtree::location_tree_fig1;
use instant_repl::{Replica, ReplicaConfig};
use instant_server::{Server, ServerConfig};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: instantdb-replica --leader A --dir PATH [--addr A] \
         [--degrade-to STAGE] [--key-seed N] [--key-window-ms N] \
         [--max-conns N] [--workers N] [--tick-ms N] [--stdin-control]"
    );
    std::process::exit(2);
}

struct Args {
    leader: String,
    dir: Option<std::path::PathBuf>,
    addr: String,
    degrade_to: Option<u8>,
    key_seed: Option<u64>,
    key_window_ms: Option<u64>,
    max_conns: usize,
    workers: usize,
    tick_ms: u64,
    stdin_control: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        leader: "127.0.0.1:5434".into(),
        dir: None,
        addr: "127.0.0.1:5435".into(),
        degrade_to: None,
        key_seed: None,
        key_window_ms: None,
        max_conns: 64,
        workers: 4,
        tick_ms: 5,
        stdin_control: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--leader" => args.leader = value("--leader"),
            "--dir" => args.dir = Some(value("--dir").into()),
            "--addr" => args.addr = value("--addr"),
            "--degrade-to" => args.degrade_to = Some(parse(&value("--degrade-to"), "--degrade-to")),
            "--key-seed" => args.key_seed = Some(parse(&value("--key-seed"), "--key-seed")),
            "--key-window-ms" => {
                args.key_window_ms = Some(parse(&value("--key-window-ms"), "--key-window-ms"))
            }
            "--max-conns" => args.max_conns = parse(&value("--max-conns"), "--max-conns"),
            "--workers" => args.workers = parse(&value("--workers"), "--workers"),
            "--tick-ms" => args.tick_ms = parse(&value("--tick-ms"), "--tick-ms"),
            "--stdin-control" => args.stdin_control = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")))
}

fn main() {
    let args = parse_args();
    let Some(dir) = args.dir.clone() else {
        usage("--dir is required (where received segments live)");
    };
    let hierarchies = HierarchyRegistry::new();
    hierarchies.register("location_gt", Arc::new(location_tree_fig1()));

    // The serving engine writes no WAL of its own: the received segment
    // files under --dir *are* this replica's durability story, and the
    // apply daemon re-replays them from the stable barrier on restart.
    let mut builder = DbConfig::builder().wal_mode(instant_core::WalMode::Off);
    if let Some(stage) = args.degrade_to {
        builder = builder.replica_degrade_to(stage);
    }
    if let Some(seed) = args.key_seed {
        builder = builder.key_seed(seed);
    }
    if let Some(ms) = args.key_window_ms {
        builder = builder.key_window(instant_common::Duration::millis(ms));
    }
    let db_cfg = match builder.build() {
        Ok(cfg) => cfg,
        Err(e) => usage(&e.to_string()),
    };
    let db = match instant_core::Db::open(db_cfg, Arc::new(SystemClock)) {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("instantdb-replica: cannot open engine: {e}");
            std::process::exit(1);
        }
    };

    let replica = match Replica::start(
        Arc::clone(&db),
        hierarchies.clone(),
        ReplicaConfig {
            leader_addr: args.leader,
            dir,
            tick: std::time::Duration::from_millis(args.tick_ms),
            ..ReplicaConfig::default()
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("instantdb-replica: cannot start replication: {e}");
            std::process::exit(1);
        }
    };

    let server_cfg = ServerConfig {
        addr: args.addr,
        max_connections: args.max_conns,
        workers: args.workers,
        read_only: true,
        // Local degradation daemons belong to the leader; a replica's
        // heap changes only through the apply path.
        degrade_every: None,
        ..ServerConfig::default()
    };
    let server = match Server::start(Arc::clone(&db), hierarchies, server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("instantdb-replica: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    // Scripts (and the CI smoke lane) wait for this exact line.
    println!("instantdb-replica listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    if args.stdin_control {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            use std::io::BufRead as _;
            match stdin.lock().read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => match line.trim() {
                    "shutdown" | "quit" | "exit" => break,
                    "stats" => {
                        println!("{:?}", replica.status());
                        let _ = std::io::stdout().flush();
                    }
                    "stats-ndjson" => {
                        let snap = instant_core::metrics::stats_snapshot(server.db());
                        for l in snap.ndjson_lines("replica") {
                            println!("{l}");
                        }
                        println!();
                        let _ = std::io::stdout().flush();
                    }
                    "" => {}
                    other => eprintln!("instantdb-replica: unknown control '{other}'"),
                },
                Err(_) => break,
            }
        }
        if let Err(e) = replica.stop() {
            eprintln!("instantdb-replica: replication stop error: {e}");
        }
        match server.shutdown() {
            Ok(()) => println!("instantdb-replica: clean shutdown"),
            Err(e) => {
                eprintln!("instantdb-replica: shutdown error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        loop {
            std::thread::park();
        }
    }
}
