//! Leader side: accept followers, ship sealed WAL segments, hold
//! retention.
//!
//! One [`ReplListener`] serves any number of followers. Each accepted
//! connection gets its own [`SegmentShipper`] daemon (on
//! [`DaemonCore`] scaffolding) running the lock-step SEGS tick:
//!
//! 1. rotate any shard whose active segment holds records — sealed
//!    files are the only shipping unit, so a low-traffic shard must not
//!    strand its tail in an active segment forever (rotation fsyncs the
//!    file before sealing it, which is what makes step 2 safe);
//! 2. for every shard, stream each sealed segment whose per-shard end
//!    LSN lies beyond the follower's durable frontier — whole file,
//!    verbatim, WSEG header included (a leader restart can re-activate
//!    and *extend* its last sealed file, so the same seqno may ship
//!    again longer; the follower keeps the longest copy);
//! 3. send one `Progress` barrier carrying the live per-shard end LSNs
//!    (doubling as the idle heartbeat that lets the follower prove a
//!    quiet shard is fully caught up);
//! 4. read exactly one `Ack` and advance this follower's **retention
//!    hold** to the minimum of its per-shard durable frontiers — from
//!    that moment on, checkpoint truncation may reclaim what this
//!    follower has fsynced, and nothing it hasn't.
//!
//! The hold is registered *before* the first sealed-segment listing
//! (see [`WalSet::truncate_before`]'s ordering note) and released by
//! the shipper's drop — follower disconnect, listener shutdown, or
//! daemon error all funnel through it, so a dead follower can never pin
//! the log. With [`ReplConfig::retain_from_start`] (the default) the
//! listener additionally pins everything from its own start, so a
//! follower that dials in later can still bootstrap from LSN 0.
//!
//! Lock rank 700 guards the follower registry; it is only ever taken in
//! the accept loop and shutdown (never inside a shipper tick, never
//! across I/O).

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use instant_common::{Error, Result};
use instant_core::{DaemonCore, Db};
use instant_server::protocol::{read_seg_frame, write_seg_frame, SegFrame, PROTOCOL_VERSION};
use instant_server::server::ddl_path;
use instant_wal::record::Lsn;
use instant_wal::segment;
use parking_lot::Mutex;

/// Leader-side replication tuning.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// Bind address for followers; port 0 picks a free port.
    pub addr: String,
    /// Shipping tick: how often each follower's shipper wakes.
    pub tick: Duration,
    /// Largest SEGS frame accepted/emitted. Must exceed the engine's
    /// segment capacity or whole-file shipping cannot fit a frame.
    pub max_frame_bytes: u32,
    /// Pin the log from the listener's start so a follower dialing in
    /// later can bootstrap from the beginning. Without it only
    /// connected followers' acks gate truncation, and a fresh follower
    /// arriving after a checkpoint is refused nothing but sees a log
    /// whose prefix is gone (it would replay an incomplete state).
    pub retain_from_start: bool,
    /// Extra DDL statements prepended to the handshake's schema
    /// snapshot (before the on-disk DDL journal, if the engine has
    /// one). Library embedders use this; the binaries rely on the
    /// journal.
    pub ddl: Vec<String>,
    /// How long a freshly accepted follower gets to send its `Hello`,
    /// and how long the shipper waits for each tick's `Ack`.
    pub io_timeout: Duration,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            addr: "127.0.0.1:0".into(),
            tick: Duration::from_millis(20),
            max_frame_bytes: 64 * 1024 * 1024,
            retain_from_start: true,
            ddl: Vec::new(),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Lock-free counters behind the `repl` observability provider. Kept in
/// their own `Arc` so the provider closure captures no `Db` handle (a
/// provider living inside `Db::obs` must not own the `Db` it lives in).
#[derive(Default)]
struct ReplCounters {
    segments_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
    acks: AtomicU64,
    followers: AtomicU64,
    handshakes: AtomicU64,
    rejected: AtomicU64,
}

struct Shared {
    db: Arc<Db>,
    cfg: ReplConfig,
    counters: Arc<ReplCounters>,
    followers: Mutex<Vec<FollowerSlot>>, // lock-rank: 700
}

/// One follower daemon slot: the `done` flag is raised by the shipper's
/// drop so the accept loop can reap exited daemons cheaply.
type FollowerSlot = (Arc<AtomicBool>, DaemonCore<SegmentShipper>);

/// The leader's replication listener. Dropping (or
/// [`shutdown`](ReplListener::shutdown)ing) it stops the accept loop,
/// joins every follower shipper, and releases all retention holds.
pub struct ReplListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
    bootstrap_hold: Option<u64>,
}

impl ReplListener {
    /// Bind and start accepting followers of `db`.
    pub fn start(db: Arc<Db>, cfg: ReplConfig) -> Result<ReplListener> {
        let Some(wal) = db.wal() else {
            return Err(Error::Unsupported(
                "replication needs a WAL-backed engine (wal_mode off has nothing to ship)".into(),
            ));
        };
        let bootstrap_hold = cfg
            .retain_from_start
            .then(|| wal.register_retention_hold(wal.base_lsn()));
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let counters = Arc::new(ReplCounters::default());
        let provider_counters = Arc::clone(&counters);
        db.obs().register_provider("repl", move || {
            vec![
                (
                    "repl.segments_shipped".into(),
                    provider_counters.segments_shipped.load(Ordering::Relaxed),
                ),
                (
                    "repl.bytes_shipped".into(),
                    provider_counters.bytes_shipped.load(Ordering::Relaxed),
                ),
                (
                    "repl.acks".into(),
                    provider_counters.acks.load(Ordering::Relaxed),
                ),
                (
                    "repl.followers".into(),
                    provider_counters.followers.load(Ordering::Relaxed),
                ),
                (
                    "repl.handshakes".into(),
                    provider_counters.handshakes.load(Ordering::Relaxed),
                ),
                (
                    "repl.rejected".into(),
                    provider_counters.rejected.load(Ordering::Relaxed),
                ),
            ]
        });
        let shared = Arc::new(Shared {
            db,
            cfg,
            counters,
            followers: Mutex::ranked(700, Vec::new()),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("repl-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared, &stop))?
        };
        Ok(ReplListener {
            addr,
            stop,
            acceptor: Some(acceptor),
            shared,
            bootstrap_hold,
        })
    }

    /// The bound address followers dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently connected followers.
    pub fn followers(&self) -> u64 {
        self.shared.counters.followers.load(Ordering::Relaxed)
    }

    /// Total acks received across all followers.
    pub fn acks(&self) -> u64 {
        self.shared.counters.acks.load(Ordering::Relaxed)
    }

    /// Stop accepting, join every shipper, release every hold.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner();
        Ok(())
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            // Unblock accept() with a throwaway self-connection.
            let _ = TcpStream::connect(self.addr);
            let _ = h.join();
        }
        let drained: Vec<FollowerSlot> = {
            let mut followers = self.shared.followers.lock();
            followers.drain(..).collect()
        };
        for (_, core) in drained {
            // The shipper's socket read fails once its follower is gone;
            // a tick error here is the normal end of a connection, not a
            // shutdown failure.
            let _ = core.stop();
        }
        if let Some(id) = self.bootstrap_hold.take() {
            if let Some(wal) = self.shared.db.wal() {
                wal.release_retention_hold(id);
            }
        }
    }
}

impl Drop for ReplListener {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.bootstrap_hold.is_some() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        match handshake(shared, stream) {
            Ok(shipper) => {
                let done = Arc::clone(&shipper.done);
                match DaemonCore::spawn("segment-shipper", shared.cfg.tick, shipper, |s| s.tick()) {
                    Ok(core) => {
                        let mut slots = shared.followers.lock();
                        // Reap daemons whose connection already ended —
                        // joining a finished thread is immediate.
                        let mut live = Vec::with_capacity(slots.len() + 1);
                        for (flag, core) in slots.drain(..) {
                            if flag.load(Ordering::Acquire) {
                                let _ = core.stop();
                            } else {
                                live.push((flag, core));
                            }
                        }
                        live.push((done, core));
                        *slots = live;
                    }
                    Err(_) => {
                        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Validate a follower's `Hello`, register its retention hold (before
/// any segment listing — see `WalSet::truncate_before`), answer `Meta`
/// with the shard count, live end LSNs and the DDL snapshot.
fn handshake(shared: &Arc<Shared>, mut stream: TcpStream) -> Result<SegmentShipper> {
    stream.set_read_timeout(Some(shared.cfg.io_timeout))?;
    stream.set_nodelay(true)?;
    let hello = read_seg_frame(&mut stream, shared.cfg.max_frame_bytes)?
        .ok_or_else(|| Error::Corrupt("follower disconnected before Hello".into()))?;
    let SegFrame::Hello {
        version,
        shards,
        durable,
    } = hello
    else {
        return Err(Error::Corrupt(
            "expected Hello to open the SEGS stream".into(),
        ));
    };
    if version != PROTOCOL_VERSION {
        return Err(Error::Unsupported(format!(
            "replication protocol version {version} (leader speaks {PROTOCOL_VERSION})"
        )));
    }
    let wal = shared
        .db
        .wal()
        .ok_or_else(|| Error::Unsupported("engine lost its WAL".into()))?;
    let n = wal.shard_count();
    let shipped: Vec<Lsn> = if shards as usize == n && durable.len() == n {
        durable
    } else if shards == 0 {
        vec![0; n]
    } else {
        return Err(Error::Unsupported(format!(
            "follower has {shards} shards, leader has {n}: wipe the replica directory to resync"
        )));
    };
    let hold = wal.register_retention_hold(shipped.iter().copied().min().unwrap_or(0));
    let next_lsns: Vec<u64> = (0..n).map(|k| wal.shard(k).next_lsn()).collect();
    let mut ddl = shared.cfg.ddl.clone();
    if let Some(path) = &shared.db.config().path {
        if let Ok(journal) = std::fs::read_to_string(ddl_path(path)) {
            ddl.extend(
                journal
                    .lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty())
                    .map(String::from),
            );
        }
    }
    let meta = SegFrame::Meta {
        shards: n as u32,
        next_lsns,
        ddl,
    };
    if let Err(e) = write_seg_frame(&mut stream, &meta) {
        wal.release_retention_hold(hold);
        return Err(e);
    }
    shared.counters.handshakes.fetch_add(1, Ordering::Relaxed);
    shared.counters.followers.fetch_add(1, Ordering::Relaxed);
    Ok(SegmentShipper {
        shared: Arc::clone(shared),
        stream,
        shipped,
        hold,
        done: Arc::new(AtomicBool::new(false)),
    })
}

/// Per-follower shipping daemon state. One tick = rotate dirty actives,
/// stream unacked sealed segments, barrier, ack. Dropping the shipper
/// (graceful stop or tick error alike) releases its retention hold and
/// decrements the follower gauge.
pub struct SegmentShipper {
    shared: Arc<Shared>,
    stream: TcpStream,
    /// Per-shard durable frontier from the follower's last ack: the
    /// first LSN it has *not* fsynced yet on that shard.
    shipped: Vec<Lsn>,
    hold: u64,
    done: Arc<AtomicBool>,
}

impl SegmentShipper {
    /// One lock-step shipping tick. An `Err` ends the daemon (normal for
    /// a vanished follower); the drop impl cleans up either way.
    pub fn tick(&mut self) -> Result<()> {
        let db = Arc::clone(&self.shared.db);
        let wal = db
            .wal()
            .ok_or_else(|| Error::Unsupported("engine lost its WAL".into()))?;
        let n = wal.shard_count();
        if self.shipped.len() != n {
            return Err(Error::Corrupt(
                "shard count changed under a live follower".into(),
            ));
        }
        // Sealed files are the shipping unit: any shard whose active
        // segment holds records would otherwise strand its tail, so
        // rotate it into a sealed (fsynced) file first. Empty actives
        // no-op, so an idle leader creates no file churn.
        if (0..n).any(|k| wal.shard(k).next_lsn() > wal.sealed_end_lsn(k)) {
            wal.rotate_all()?;
        }
        let started = Instant::now();
        let mut sent_bytes = 0u64;
        for k in 0..n {
            let sealed = wal.sealed_segments(k);
            for (i, &(seqno, first_lsn, _len)) in sealed.iter().enumerate() {
                // A segment's records span [first_lsn, end) in this
                // shard's (jump-discontinuous) stream, where end is the
                // next sealed segment's first LSN — or the active
                // segment's first LSN for the newest sealed file.
                let end = match sealed.get(i + 1) {
                    Some(&(_, next_first, _)) => next_first,
                    None => wal.sealed_end_lsn(k),
                };
                if end <= self.shipped[k] {
                    continue; // follower already has all of it durable
                }
                let path = wal.shard(k).path().join(segment::file_name(seqno));
                let bytes = std::fs::read(&path)?;
                sent_bytes += bytes.len() as u64;
                self.shared
                    .counters
                    .segments_shipped
                    .fetch_add(1, Ordering::Relaxed);
                self.shared
                    .counters
                    .bytes_shipped
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                write_seg_frame(
                    &mut self.stream,
                    &SegFrame::Segment {
                        shard: k as u32,
                        seqno,
                        first_lsn,
                        bytes,
                    },
                )?;
            }
        }
        let next_lsns: Vec<u64> = (0..n).map(|k| wal.shard(k).next_lsn()).collect();
        write_seg_frame(&mut self.stream, &SegFrame::Progress { next_lsns })?;
        self.stream.flush()?;

        let ack = read_seg_frame(&mut self.stream, self.shared.cfg.max_frame_bytes)?
            .ok_or_else(|| Error::Corrupt("follower disconnected before Ack".into()))?;
        let SegFrame::Ack {
            durable,
            applied: _,
        } = ack
        else {
            return Err(Error::Corrupt("expected Ack to close the tick".into()));
        };
        if durable.len() != n {
            return Err(Error::Corrupt(format!(
                "ack covers {} shards, leader has {n}",
                durable.len()
            )));
        }
        self.shipped = durable;
        if let Some(floor) = self.shipped.iter().copied().min() {
            wal.update_retention_hold(self.hold, floor);
        }
        self.shared.counters.acks.fetch_add(1, Ordering::Relaxed);
        if sent_bytes > 0 {
            // Replication lag: how long this tick's shipped data took to
            // become durable-and-applied on the follower (ship → fsync →
            // replay → ack, measured leader-side).
            db.obs().repl_lag.record_duration(started.elapsed());
        }
        Ok(())
    }
}

impl Drop for SegmentShipper {
    fn drop(&mut self) {
        if let Some(wal) = self.shared.db.wal() {
            wal.release_retention_hold(self.hold);
        }
        self.shared
            .counters
            .followers
            .fetch_sub(1, Ordering::Relaxed);
        self.done.store(true, Ordering::Release);
    }
}

/// The leader binary's convenience bundle: where the engine's data
/// lives, if anywhere (the DDL journal next to it feeds handshakes).
pub fn data_ddl_journal(path: &std::path::Path) -> PathBuf {
    ddl_path(path)
}
