//! Follower side: receive sealed segments, fsync them into a local
//! `WalSet` layout, replay the stable prefix into a live read-only
//! engine.
//!
//! ## The stable barrier
//!
//! The follower may only apply ops from a prefix of the merged LSN
//! stream that can never change again. Two things could change it:
//!
//! * **a straggler record** — some shard's stream has a hole the leader
//!   hasn't shipped yet. Every record below the *raw barrier* (the
//!   minimum, over shards, of the first LSN not yet received — with a
//!   shard counted as `∞` once the leader's `Progress` heartbeat shows
//!   its copy is complete) is provably received: per-shard streams are
//!   LSN-monotone, so a shard holding an unseen record below LSN `b`
//!   would have its own frontier below `b`.
//! * **a transaction still open at the raw barrier** — its `Commit` (or
//!   the tail of its batch) is still in flight, and replaying around it
//!   now would diverge from replaying it later. A commit's records are
//!   appended as one contiguous batch on one shard, so an open
//!   transaction's records all sit at its shard's received tail; the
//!   barrier is *lowered* to the smallest begin-LSN among open
//!   transactions, excluding them wholly.
//!
//! Both bounds only ever move forward, so the sub-barrier record set is
//! grow-only and the op stream [`replay_all`] derives from it is
//! prefix-stable: a transaction that commits later can only contribute
//! ops at or above the barrier that once excluded it. That is exactly
//! the contract [`Db::replay_external_ops`]'s `applied_upto` frontier
//! needs.
//!
//! Replay uses [`replay_all`] — not checkpoint-anchored
//! [`replay`](instant_wal::recovery::replay) — because the leader's
//! `Checkpoint` records describe *its* heap, which the follower does
//! not have; the follower's redo must start from LSN 0 every round and
//! rely on `applied_upto` to skip what it already applied.
//!
//! ## Degraded replicas
//!
//! With [`DbConfig::replica_degrade_to`](instant_core::DbConfig) set,
//! the engine degrades every shipped image to at least that stage
//! before it touches the follower heap and re-verifies the floor
//! (`Error::Policy` otherwise). After each apply round the replica
//! shreds key windows older than the current one, so the sealed
//! payloads it re-reads on later rounds can never re-materialize
//! precise history: an already-applied op is skipped by its LSN, and a
//! late-committing straggler whose window key is gone surfaces as
//! `Op::Unrecoverable` — an expunge, erring toward *less* precision.
//!
//! [`replay_all`]: instant_wal::recovery::replay_all
//! [`Db::replay_external_ops`]: instant_core::Db::replay_external_ops

use std::collections::HashMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use instant_common::{Error, Result, TxId};
use instant_core::query::{schema_for_create, HierarchyRegistry};
use instant_core::{DaemonCore, Db, ReplicaApplyState};
use instant_server::protocol::{read_seg_frame, seg_hello, write_seg_frame, SegFrame};
use instant_wal::record::{LogRecord, Lsn};
use instant_wal::recovery::{self, Op};
use instant_wal::segment::{self, SegmentConfig};
use instant_wal::WalSet;
use parking_lot::Mutex;

/// Follower-side replication tuning.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The leader's SEGS address.
    pub leader_addr: String,
    /// Where received segment files live — the replica's durability
    /// root. Restarting a replica on the same directory resumes from
    /// its per-shard durable frontiers instead of re-shipping the log.
    pub dir: PathBuf,
    /// Daemon tick: apply-round pacing while connected, reconnect
    /// backoff while not.
    pub tick: Duration,
    /// Largest SEGS frame accepted (must cover a whole segment file).
    pub max_frame_bytes: u32,
    /// Per-read socket timeout. The leader heartbeats every shipping
    /// tick, so a silent stretch this long means the leader is gone and
    /// the connection is re-dialed.
    pub io_timeout: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            leader_addr: "127.0.0.1:5434".into(),
            dir: PathBuf::from("replica-segments"),
            tick: Duration::from_millis(5),
            max_frame_bytes: 64 * 1024 * 1024,
            io_timeout: Duration::from_secs(1),
        }
    }
}

/// Point-in-time view of a replica's progress (tests, stats, CLIs).
#[derive(Debug, Clone, Default)]
pub struct ReplicaStatus {
    pub connected: bool,
    /// Per-shard first LSN not yet durable locally.
    pub durable: Vec<Lsn>,
    /// Merged LSN below which ops are applied to the serving engine.
    pub applied_upto: Lsn,
    /// Completed apply rounds (one per leader Progress barrier).
    pub rounds: u64,
    /// Re-dials after a lost/failed connection.
    pub reconnects: u64,
    pub last_error: Option<String>,
}

/// Lock-free scalars feed the obs provider; the variable-size detail
/// sits behind rank 710 and is only ever locked for a snapshot-copy —
/// never across I/O or WAL calls.
struct Progress {
    connected: AtomicU64,
    applied: AtomicU64,
    rounds: AtomicU64,
    reconnects: AtomicU64,
    detail: Mutex<ProgressDetail>, // lock-rank: 710
}

#[derive(Default)]
struct ProgressDetail {
    durable: Vec<Lsn>,
    last_error: Option<String>,
}

/// A running replication follower: one daemon dialing the leader,
/// landing segments, and replaying the stable prefix into `db`.
pub struct Replica {
    core: Option<DaemonCore<ReplicaState>>,
    progress: Arc<Progress>,
}

impl Replica {
    /// Start replicating into `db` (the caller's read-only serving
    /// engine; its `replica_degrade_to`, key seed and key window decide
    /// what the follower can materialize). `hierarchies` must register
    /// every domain hierarchy the leader's DDL references.
    pub fn start(
        db: Arc<Db>,
        hierarchies: HierarchyRegistry,
        cfg: ReplicaConfig,
    ) -> Result<Replica> {
        std::fs::create_dir_all(&cfg.dir)?;
        let progress = Arc::new(Progress {
            connected: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            detail: Mutex::ranked(710, ProgressDetail::default()),
        });
        let provider = Arc::clone(&progress);
        db.obs().register_provider("repl", move || {
            vec![
                (
                    "repl.applied_lsn".into(),
                    provider.applied.load(Ordering::Relaxed),
                ),
                (
                    "repl.rounds".into(),
                    provider.rounds.load(Ordering::Relaxed),
                ),
                (
                    "repl.connected".into(),
                    provider.connected.load(Ordering::Relaxed),
                ),
                (
                    "repl.reconnects".into(),
                    provider.reconnects.load(Ordering::Relaxed),
                ),
            ]
        });
        let state = ReplicaState {
            db,
            hierarchies,
            cfg: cfg.clone(),
            progress: Arc::clone(&progress),
            conn: None,
            apply: ReplicaApplyState::default(),
        };
        let core = DaemonCore::spawn("replica-apply", cfg.tick, state, |s| {
            s.step();
            Ok(())
        })?;
        Ok(Replica {
            core: Some(core),
            progress,
        })
    }

    /// Current progress snapshot.
    pub fn status(&self) -> ReplicaStatus {
        let detail = self.progress.detail.lock();
        ReplicaStatus {
            connected: self.progress.connected.load(Ordering::Relaxed) != 0,
            durable: detail.durable.clone(),
            applied_upto: self.progress.applied.load(Ordering::Relaxed),
            rounds: self.progress.rounds.load(Ordering::Relaxed),
            reconnects: self.progress.reconnects.load(Ordering::Relaxed),
            last_error: detail.last_error.clone(),
        }
    }

    /// Stop the apply daemon and return the final status.
    pub fn stop(mut self) -> Result<ReplicaStatus> {
        if let Some(core) = self.core.take() {
            core.stop()?;
        }
        Ok(self.status())
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        if let Some(core) = self.core.take() {
            let _ = core.stop();
        }
    }
}

struct Conn {
    stream: TcpStream,
    shards: usize,
}

struct ReplicaState {
    db: Arc<Db>,
    hierarchies: HierarchyRegistry,
    cfg: ReplicaConfig,
    progress: Arc<Progress>,
    conn: Option<Conn>,
    apply: ReplicaApplyState,
}

impl ReplicaState {
    /// One daemon step: dial if disconnected, otherwise run one
    /// receive-replay-ack round. Errors are recorded and turn into a
    /// reconnect on the next tick — the daemon itself never dies to a
    /// flaky network.
    fn step(&mut self) {
        if self.conn.is_none() {
            match self.connect() {
                Ok(conn) => {
                    self.conn = Some(conn);
                    self.progress.connected.store(1, Ordering::Relaxed);
                }
                Err(e) => {
                    self.note_error(e);
                    return;
                }
            }
        }
        if let Err(e) = self.round() {
            self.note_error(e);
            self.conn = None;
            self.progress.connected.store(0, Ordering::Relaxed);
            self.progress.reconnects.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn note_error(&self, e: Error) {
        self.progress.detail.lock().last_error = Some(e.to_string());
    }

    /// Dial the leader, exchange Hello/Meta, lay out shard directories
    /// and replay the DDL snapshot into the local catalog.
    fn connect(&mut self) -> Result<Conn> {
        let (local_shards, durable) = scan_local_layout(&self.cfg.dir)?;
        let mut stream = TcpStream::connect(&self.cfg.leader_addr)?;
        stream.set_read_timeout(Some(self.cfg.io_timeout))?;
        stream.set_nodelay(true)?;
        write_seg_frame(&mut stream, &seg_hello(local_shards as u32, durable))?;
        let meta = read_seg_frame(&mut stream, self.cfg.max_frame_bytes)?
            .ok_or_else(|| Error::Corrupt("leader closed during handshake".into()))?;
        let SegFrame::Meta {
            shards,
            next_lsns: _,
            ddl,
        } = meta
        else {
            return Err(Error::Corrupt("expected Meta to answer Hello".into()));
        };
        let shards = shards as usize;
        if shards == 0 {
            return Err(Error::Corrupt("leader advertised zero shards".into()));
        }
        if local_shards != 0 && local_shards != shards {
            return Err(Error::Unsupported(format!(
                "local layout has {local_shards} shards, leader has {shards}: \
                 wipe the replica directory to resync"
            )));
        }
        for k in 0..shards {
            std::fs::create_dir_all(self.cfg.dir.join(shard_dir_name(k)))?;
        }
        // DDL replays in creation order so table ids line up with the
        // leader's; statements for tables we already have are skipped
        // (every reconnect re-sends the full snapshot).
        for stmt in &ddl {
            let schema = schema_for_create(&self.hierarchies, stmt)?;
            if self.db.catalog().get(&schema.name).is_err() {
                self.db.create_table(schema)?;
            }
        }
        Ok(Conn { stream, shards })
    }

    /// One lock-step round: land segments until the leader's Progress
    /// barrier, fsync them, replay the stable prefix, ack.
    fn round(&mut self) -> Result<()> {
        let conn = self.conn.as_mut().expect("round() only runs connected"); // lint:allow(L001, step() establishes the connection first)
        let leader_next = loop {
            let frame = read_seg_frame(&mut conn.stream, self.cfg.max_frame_bytes)?
                .ok_or_else(|| Error::Corrupt("leader disconnected mid-round".into()))?;
            match frame {
                SegFrame::Segment {
                    shard,
                    seqno,
                    first_lsn: _,
                    bytes,
                } => {
                    let shard = shard as usize;
                    if shard >= conn.shards {
                        return Err(Error::Corrupt(format!(
                            "segment for shard {shard} of {}",
                            conn.shards
                        )));
                    }
                    store_segment(&self.cfg.dir.join(shard_dir_name(shard)), seqno, &bytes)?;
                }
                SegFrame::Progress { next_lsns } => break next_lsns,
                other => {
                    return Err(Error::Corrupt(format!(
                        "unexpected frame mid-round: {other:?}"
                    )))
                }
            }
        };
        if leader_next.len() != conn.shards {
            return Err(Error::Corrupt("progress shard count mismatch".into()));
        }

        // Re-open the received layout (cheap scan; received files are
        // whole, fsynced sealed segments, so the open-time validation is
        // a no-op pass) and pull the merged record stream.
        let set = WalSet::open_with(&self.cfg.dir, conn.shards, SegmentConfig::default())?;
        let durable: Vec<Lsn> = (0..conn.shards).map(|k| set.shard(k).next_lsn()).collect();
        let merged = set.iterate()?;
        drop(set);

        let barrier = stable_barrier(&merged, &durable, &leader_next);
        let below: Vec<(Lsn, LogRecord)> = merged
            .into_iter()
            .filter(|(lsn, _)| *lsn < barrier)
            .collect();
        let plan = recovery::replay_all(&below, self.db.keystore());
        let ops: Vec<(Lsn, Op)> = plan.op_lsns.into_iter().zip(plan.ops).collect();
        self.db.replay_external_ops(&ops, &mut self.apply)?;
        if self.db.config().replica_degrade_to.is_some() {
            // Degraded replica: derived window keys served their one
            // purpose (decoding images that were immediately degraded);
            // shredding everything before the current window keeps the
            // precise history unmaterializable on this host.
            self.db.keystore().shred_before(self.db.now());
        }

        self.progress
            .applied
            .store(self.apply.applied_upto, Ordering::Relaxed);
        self.progress.rounds.fetch_add(1, Ordering::Relaxed);
        {
            let mut detail = self.progress.detail.lock();
            detail.durable = durable.clone();
            detail.last_error = None;
        }

        write_seg_frame(
            &mut conn.stream,
            &SegFrame::Ack {
                durable,
                applied: self.apply.applied_upto,
            },
        )?;
        conn.stream.flush()?;
        Ok(())
    }
}

/// Raw barrier (minimum un-received LSN over shards, `∞` for shards the
/// heartbeat proves complete), then lowered below any transaction still
/// open there — see the module docs for why the result is a stable,
/// monotone prefix bound. Public for the crate's property tests, which
/// drive it with arbitrary durable frontiers.
pub fn stable_barrier(merged: &[(Lsn, LogRecord)], durable: &[Lsn], leader_next: &[Lsn]) -> Lsn {
    let mut raw = Lsn::MAX;
    for (k, &d) in durable.iter().enumerate() {
        if d < leader_next[k] {
            raw = raw.min(d);
        }
    }
    let mut open: HashMap<TxId, Lsn> = HashMap::new();
    for (lsn, rec) in merged.iter().take_while(|(lsn, _)| *lsn < raw) {
        match rec {
            LogRecord::Commit { tx, .. } | LogRecord::Abort { tx, .. } => {
                open.remove(tx);
            }
            _ => {
                if let Some(tx) = rec.tx() {
                    open.entry(tx).or_insert(*lsn);
                }
            }
        }
    }
    // An open transaction only holds the barrier down while its shard
    // (`tx % n` — the leader appends a whole commit batch to one shard)
    // is still behind the leader: the missing Commit may be in flight.
    // On a shard the heartbeat proves complete, a dangling tx is one the
    // leader's own recovery rolled back after a torn tail — its Commit
    // can never arrive, and waiting for it would stall replay forever.
    let n = durable.len() as u64;
    open.retain(|tx, _| {
        let k = (tx.0 % n) as usize;
        durable[k] < leader_next[k]
    });
    open.values().copied().min().unwrap_or(raw).min(raw)
}

/// `shard-<k>` directory name, zero-padded like the leader's layout.
fn shard_dir_name(k: usize) -> String {
    format!("shard-{k:03}")
}

/// Count `shard-*` directories and compute each shard's durable
/// frontier (the contiguous received chain's end LSN) by opening the
/// layout read-style. A directory with no shard dirs is a fresh replica
/// (`(0, [])` — the leader's Meta dictates the layout).
fn scan_local_layout(dir: &Path) -> Result<(usize, Vec<Lsn>)> {
    let mut count = 0usize;
    if dir.is_dir() {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(rest) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("shard-"))
            {
                if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(k) = rest.parse::<usize>() {
                        count = count.max(k + 1);
                    }
                }
            }
        }
    }
    if count == 0 {
        return Ok((0, Vec::new()));
    }
    let set = WalSet::open_with(dir, count, SegmentConfig::default())?;
    let durable = (0..count).map(|k| set.shard(k).next_lsn()).collect();
    Ok((count, durable))
}

/// Land one whole received segment file durably: temp file, fsync,
/// rename over, directory fsync. A shorter local copy of the same seqno
/// (the leader re-sealed it longer after a restart, or re-shipped after
/// our partial receive) is replaced; an equal-or-longer copy wins and
/// the incoming bytes are dropped — segment content is append-only, so
/// longest is always the superset.
fn store_segment(shard_dir: &Path, seqno: u64, bytes: &[u8]) -> Result<()> {
    let path = shard_dir.join(segment::file_name(seqno));
    if let Ok(meta) = std::fs::metadata(&path) {
        if meta.len() >= bytes.len() as u64 {
            return Ok(());
        }
    }
    let tmp = shard_dir.join(format!("{}.tmp", segment::file_name(seqno)));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    segment::sync_dir(shard_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::{TableId, Timestamp, TupleId};
    use instant_wal::record::Payload;

    fn rec(tx: u64, i: u64) -> LogRecord {
        LogRecord::Insert {
            tx: TxId(tx),
            table: TableId(1),
            tid: TupleId::new(1, i as u16),
            row: Payload::Plain(vec![7; 4]),
            at: Timestamp::micros(i),
        }
    }

    fn commit(tx: u64) -> LogRecord {
        LogRecord::Commit {
            tx: TxId(tx),
            at: Timestamp::ZERO,
        }
    }

    #[test]
    fn barrier_is_min_unreceived_with_idle_shards_infinite() {
        let merged = vec![(0, rec(1, 0)), (1, commit(1))];
        // Shard 0 received through 2, leader at 5: barrier 2. Shard 1
        // fully caught up (3 == 3): contributes nothing.
        assert_eq!(stable_barrier(&merged, &[2, 3], &[5, 3]), 2);
        // Both caught up: everything received is stable.
        assert_eq!(stable_barrier(&merged, &[5, 3], &[5, 3]), Lsn::MAX);
    }

    #[test]
    fn barrier_lowers_below_an_open_transaction() {
        // Tx 9 began at LSN 3 with no commit below the raw barrier (6):
        // the stable prefix must exclude it wholly.
        let merged = vec![
            (0, rec(1, 0)),
            (1, commit(1)),
            (3, rec(9, 1)),
            (4, rec(9, 2)),
        ];
        assert_eq!(stable_barrier(&merged, &[6], &[9]), 3);
        // Once its commit lands below the raw barrier the lowering ends.
        let merged = vec![
            (0, rec(1, 0)),
            (1, commit(1)),
            (3, rec(9, 1)),
            (4, rec(9, 2)),
            (5, commit(9)),
        ];
        assert_eq!(stable_barrier(&merged, &[6], &[9]), 6);
    }

    #[test]
    fn barrier_ignores_rolled_back_tx_on_a_complete_shard() {
        // Tx 9's commit was torn off the leader's log and trimmed by its
        // recovery; the shard's stream is complete (6 == 6), so the
        // dangling records must not pin the barrier forever.
        let merged = vec![
            (0, rec(1, 0)),
            (1, commit(1)),
            (3, rec(9, 1)),
            (4, rec(9, 2)),
        ];
        assert_eq!(stable_barrier(&merged, &[6], &[6]), Lsn::MAX);
        // Two shards, tx 9 (odd) lives on shard 1: complete shard 1 with
        // behind shard 0 still yields shard 0's frontier, not tx 9's.
        assert_eq!(stable_barrier(&merged, &[2, 6], &[5, 6]), 2);
    }

    #[test]
    fn stored_segments_keep_the_longest_copy() {
        let dir = std::env::temp_dir().join(format!(
            "instantdb-repl-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        store_segment(&dir, 3, b"WSEG-short").unwrap();
        store_segment(&dir, 3, b"WSEG-short-then-longer").unwrap();
        // A shorter re-ship (impossible from a correct leader, but the
        // property is what makes re-ships safe at all) is ignored.
        store_segment(&dir, 3, b"WSEG").unwrap();
        let on_disk = std::fs::read(dir.join(segment::file_name(3))).unwrap();
        assert_eq!(on_disk, b"WSEG-short-then-longer");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
