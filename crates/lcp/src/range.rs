//! Procedural numeric hierarchies.
//!
//! The paper's query preamble `SET ACCURACY LEVEL … RANGE1000 FOR P.SALARY`
//! treats a numeric domain as an implicit generalization tree whose level-`k`
//! nodes are aligned intervals of configured widths. A salary of 2340 with
//! widths `[1, 100, 1000, 10000]` degrades `2340 → [2300,2400) → [2000,3000)
//! → [0,10000)` — exactly the `SALARY = '2000-3000'` literal of the example.
//!
//! Widths must be strictly increasing and each divide the next, so that a
//! degraded interval always generalizes to a unique coarser interval (the
//! tree property of Fig. 1 carried over to numbers).

use instant_common::{Error, LevelId, Result, Value};

use crate::hierarchy::Hierarchy;

/// An aligned-interval hierarchy over `i64`.
#[derive(Debug, Clone)]
pub struct RangeHierarchy {
    name: String,
    /// Interval width per level; `widths[0] == 1` means level 0 is exact.
    widths: Vec<i64>,
    /// Domain bounds (inclusive lo, exclusive hi) for the info metric.
    domain_lo: i64,
    domain_hi: i64,
}

impl RangeHierarchy {
    /// Build a hierarchy named `name` over `[domain_lo, domain_hi)` with the
    /// given level widths (most accurate first; usually starting with 1).
    pub fn new(name: &str, widths: &[i64], domain_lo: i64, domain_hi: i64) -> Result<Self> {
        if widths.len() < 2 {
            return Err(Error::Policy(format!(
                "range hierarchy {name} needs at least 2 levels"
            )));
        }
        if domain_hi <= domain_lo {
            return Err(Error::Policy(format!(
                "range hierarchy {name}: empty domain [{domain_lo},{domain_hi})"
            )));
        }
        for w in widths {
            if *w <= 0 {
                return Err(Error::Policy(format!(
                    "range hierarchy {name}: widths must be positive"
                )));
            }
        }
        for pair in widths.windows(2) {
            if pair[1] <= pair[0] || pair[1] % pair[0] != 0 {
                return Err(Error::Policy(format!(
                    "range hierarchy {name}: width {} must be a strict multiple of {}",
                    pair[1], pair[0]
                )));
            }
        }
        Ok(RangeHierarchy {
            name: name.to_string(),
            widths: widths.to_vec(),
            domain_lo,
            domain_hi,
        })
    }

    /// The conventional salary hierarchy used throughout examples and
    /// benchmarks: exact → 100 → 1000 → 10000 over `[0, 1_000_000)`.
    pub fn salary() -> RangeHierarchy {
        RangeHierarchy::new("salary", &[1, 100, 1000, 10000], 0, 1_000_000)
            .expect("static hierarchy is valid")
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    fn width_at(&self, k: LevelId) -> Result<i64> {
        self.widths
            .get(k.0 as usize)
            .copied()
            .ok_or_else(|| Error::Accuracy(format!("level d{} out of range", k.0)))
    }

    fn align(v: i64, width: i64) -> (i64, i64) {
        let lo = v.div_euclid(width) * width;
        (lo, lo + width)
    }

    /// The interval `v` occupies at level `k` (as a `(lo, hi)` pair).
    pub fn interval_at(&self, v: i64, k: LevelId) -> Result<(i64, i64)> {
        let w = self.width_at(k)?;
        Ok(Self::align(v, w))
    }
}

impl Hierarchy for RangeHierarchy {
    fn levels(&self) -> u8 {
        self.widths.len() as u8
    }

    fn level_of(&self, v: &Value) -> Option<LevelId> {
        match v {
            // A bare integer can only be the accurate state: every coarser
            // level materializes as a `Value::Range`.
            Value::Int(_) => Some(LevelId(0)),
            Value::Range { lo, hi } => {
                let w = hi - lo;
                self.widths
                    .iter()
                    .position(|&x| x == w && lo % x == 0)
                    .map(|i| LevelId(i as u8))
            }
            _ => None,
        }
    }

    fn generalize(&self, v: &Value, k: LevelId) -> Result<Value> {
        let w = self.width_at(k)?;
        match v {
            Value::Int(x) => {
                if w == 1 {
                    Ok(Value::Int(*x))
                } else {
                    let (lo, hi) = Self::align(*x, w);
                    Ok(Value::Range { lo, hi })
                }
            }
            Value::Range { lo, hi } => {
                let cur = self.level_of(v).ok_or_else(|| {
                    Error::NotFound(format!("{v} is not an aligned level of {}", self.name))
                })?;
                if cur > k {
                    return Err(Error::Accuracy(format!(
                        "level d{} not computable: {v} already degraded to d{}",
                        k.0, cur.0
                    )));
                }
                let (nlo, nhi) = Self::align(*lo, w);
                debug_assert!(
                    nlo <= *lo && nhi >= *hi,
                    "coarser interval must contain finer"
                );
                if w == 1 {
                    Ok(Value::Int(*lo))
                } else {
                    Ok(Value::Range { lo: nlo, hi: nhi })
                }
            }
            other => Err(Error::NotFound(format!(
                "range hierarchy {} holds integers, got {other}",
                self.name
            ))),
        }
    }

    fn residual_info(&self, v: &Value, k: LevelId) -> f64 {
        let domain = (self.domain_hi - self.domain_lo) as f64;
        if domain <= 1.0 {
            return 0.0;
        }
        let Ok(w) = self.width_at(k) else { return 0.0 };
        if self.generalize(v, k).is_err() {
            return 0.0;
        }
        ((domain / w as f64).log2() / domain.log2()).clamp(0.0, 1.0)
    }

    fn level_name(&self, k: LevelId) -> String {
        match self.widths.get(k.0 as usize) {
            Some(1) => "exact".to_string(),
            Some(w) => format!("range{w}"),
            None => format!("d{}", k.0),
        }
    }

    fn cardinality_at(&self, k: LevelId) -> u64 {
        let w = self.widths.get(k.0 as usize).copied().unwrap_or(1).max(1);
        (((self.domain_hi - self.domain_lo) as u64).saturating_add(w as u64 - 1)) / w as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_salary_example() {
        let h = RangeHierarchy::salary();
        // 2340 at RANGE1000 → the '2000-3000' literal of the paper.
        assert_eq!(
            h.generalize(&Value::Int(2340), LevelId(2)).unwrap(),
            Value::Range { lo: 2000, hi: 3000 }
        );
        assert_eq!(
            h.generalize(&Value::Int(2340), LevelId(2))
                .unwrap()
                .to_string(),
            "2000-3000"
        );
    }

    #[test]
    fn level_zero_is_exact() {
        let h = RangeHierarchy::salary();
        assert_eq!(
            h.generalize(&Value::Int(777), LevelId(0)).unwrap(),
            Value::Int(777)
        );
    }

    #[test]
    fn degraded_interval_generalizes_to_containing_interval() {
        let h = RangeHierarchy::salary();
        let r = Value::Range { lo: 2300, hi: 2400 }; // level 1
        assert_eq!(h.level_of(&r), Some(LevelId(1)));
        assert_eq!(
            h.generalize(&r, LevelId(2)).unwrap(),
            Value::Range { lo: 2000, hi: 3000 }
        );
        assert_eq!(
            h.generalize(&r, LevelId(3)).unwrap(),
            Value::Range { lo: 0, hi: 10000 }
        );
    }

    #[test]
    fn refinement_rejected() {
        let h = RangeHierarchy::salary();
        let r = Value::Range { lo: 2000, hi: 3000 };
        assert!(matches!(
            h.generalize(&r, LevelId(1)),
            Err(Error::Accuracy(_))
        ));
    }

    #[test]
    fn negative_values_align_with_euclidean_division() {
        let h = RangeHierarchy::new("t", &[1, 10], -100, 100).unwrap();
        assert_eq!(
            h.generalize(&Value::Int(-3), LevelId(1)).unwrap(),
            Value::Range { lo: -10, hi: 0 }
        );
    }

    #[test]
    fn misaligned_range_not_in_domain() {
        let h = RangeHierarchy::salary();
        let bogus = Value::Range { lo: 2050, hi: 2150 };
        assert_eq!(h.level_of(&bogus), None);
        assert!(h.generalize(&bogus, LevelId(2)).is_err());
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(RangeHierarchy::new("x", &[1], 0, 10).is_err());
        assert!(RangeHierarchy::new("x", &[1, 3, 5], 0, 10).is_err()); // 5 % 3 != 0
        assert!(RangeHierarchy::new("x", &[2, 1], 0, 10).is_err()); // not increasing
        assert!(RangeHierarchy::new("x", &[0, 10], 0, 10).is_err()); // zero width
        assert!(RangeHierarchy::new("x", &[1, 10], 5, 5).is_err()); // empty domain
    }

    #[test]
    fn residual_info_monotone() {
        let h = RangeHierarchy::salary();
        let v = Value::Int(123_456);
        let mut prev = f64::INFINITY;
        for k in 0..h.levels() {
            let r = h.residual_info(&v, LevelId(k));
            assert!(r <= prev + 1e-12);
            prev = r;
        }
    }

    #[test]
    fn cardinality_at_levels() {
        let h = RangeHierarchy::salary();
        assert_eq!(h.cardinality_at(LevelId(0)), 1_000_000);
        assert_eq!(h.cardinality_at(LevelId(2)), 1_000);
        assert_eq!(h.cardinality_at(LevelId(3)), 100);
    }

    #[test]
    fn level_names() {
        let h = RangeHierarchy::salary();
        assert_eq!(h.level_name(LevelId(0)), "exact");
        assert_eq!(h.level_name(LevelId(2)), "range1000");
    }

    #[test]
    fn non_int_rejected() {
        let h = RangeHierarchy::salary();
        assert!(h.generalize(&Value::Str("x".into()), LevelId(1)).is_err());
        assert_eq!(h.level_of(&Value::Bool(true)), None);
    }
}
