//! Tuple Life Cycle Policies (paper Fig. 3).
//!
//! "A tuple is a composition of stable attributes which do not participate
//! in the degradation process and degradable attributes. The combination of
//! LCPs of all degradable attributes makes that, at each independent
//! attribute transition, the tuple as a whole reaches a new tuple state tk,
//! until all degradable attributes have reached their final state. A tuple
//! LCP is thus derived from the combination of each individual attributes'
//! LCP."
//!
//! [`TupleLcp`] computes the merged event timeline (the product automaton's
//! transition sequence), the tuple state `t_k` at any age, and the expunge
//! age — "when a tuple is deleted, both stable and degradable attributes are
//! deleted", which for end-of-life-cycle removal happens once every
//! degradable attribute has left its final state.

use instant_common::{Duration, LevelId};

use crate::automaton::AttributeLcp;

/// One transition of the tuple LCP timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleEvent {
    /// Age (since tuple insertion) at which the transition fires.
    pub at: Duration,
    /// Which degradable attribute moves (index into the LCP list order).
    pub attr: usize,
    /// Level entered, or `None` when the attribute value is removed.
    pub to_level: Option<LevelId>,
}

/// The product automaton of several attribute LCPs.
#[derive(Debug, Clone)]
pub struct TupleLcp {
    lcps: Vec<AttributeLcp>,
    events: Vec<TupleEvent>,
}

impl TupleLcp {
    /// Combine the LCPs of a tuple's degradable attributes (attribute order
    /// is the caller's — typically schema order of degradable columns).
    ///
    /// Simultaneous transitions of different attributes are ordered by
    /// attribute index, forming a single deterministic event sequence — each
    /// event still yields a distinct tuple state, matching "at each
    /// independent attribute transition, the tuple reaches a new state".
    pub fn combine(lcps: Vec<AttributeLcp>) -> TupleLcp {
        let mut events = Vec::new();
        for (attr, lcp) in lcps.iter().enumerate() {
            let ages = lcp.transition_ages();
            for (i, &at) in ages.iter().enumerate() {
                let to_level = lcp.stages().get(i + 1).map(|s| s.level);
                events.push(TupleEvent { at, attr, to_level });
            }
        }
        events.sort_by(|a, b| a.at.cmp(&b.at).then(a.attr.cmp(&b.attr)));
        TupleLcp { lcps, events }
    }

    /// Per-attribute LCPs in order.
    pub fn attribute_lcps(&self) -> &[AttributeLcp] {
        &self.lcps
    }

    /// The full, ordered transition timeline.
    pub fn events(&self) -> &[TupleEvent] {
        &self.events
    }

    /// Number of tuple states `t_0 … t_n` (events + the initial state).
    pub fn num_states(&self) -> usize {
        self.events.len() + 1
    }

    /// The tuple state index `k` such that the tuple is in `t_k` at `age`:
    /// the number of transitions that have fired.
    pub fn state_at(&self, age: Duration) -> usize {
        self.events.iter().take_while(|e| e.at <= age).count()
    }

    /// The level vector (one entry per degradable attribute; `None` =
    /// removed) in force at `age`.
    pub fn levels_at(&self, age: Duration) -> Vec<Option<LevelId>> {
        self.lcps.iter().map(|l| l.level_at(age)).collect()
    }

    /// Age at which the whole tuple is expunged: all degradable attributes
    /// have reached their final state's end. Zero-attribute tuples never
    /// expire through degradation.
    pub fn expunge_age(&self) -> Option<Duration> {
        self.lcps.iter().map(|l| l.lifetime()).max()
    }

    /// The shortest step across all attributes — the attack-frequency bound
    /// of the paper's security claim, now at tuple granularity.
    pub fn shortest_step(&self) -> Option<Duration> {
        self.lcps.iter().map(|l| l.shortest_step()).min()
    }

    /// Is the level vector `ks` computable at `age`? Level `k_i` is
    /// computable iff attribute `i`'s current level is ≤ `k_i` (still fine
    /// enough) — the `ST_j ⊆ f_k`-domain condition of the σ/π semantics.
    pub fn computable_at(&self, age: Duration, ks: &[LevelId]) -> bool {
        debug_assert_eq!(ks.len(), self.lcps.len());
        self.lcps
            .iter()
            .zip(ks)
            .all(|(l, k)| matches!(l.level_at(age), Some(cur) if cur <= *k))
    }

    /// The next transition due strictly after `age`.
    pub fn next_event_after(&self, age: Duration) -> Option<&TupleEvent> {
        self.events.iter().find(|e| e.at > age)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::Duration as D;

    /// Fig. 3 setting: two attributes with interleaving transitions.
    fn two_attr() -> TupleLcp {
        // location: d0 1h -> d1 1d -> removed
        let loc = AttributeLcp::from_pairs(&[(0, D::hours(1)), (1, D::days(1))]).unwrap();
        // salary: d0 12h -> d1 2d -> removed
        let sal = AttributeLcp::from_pairs(&[(0, D::hours(12)), (1, D::days(2))]).unwrap();
        TupleLcp::combine(vec![loc, sal])
    }

    #[test]
    fn event_timeline_is_sorted_merge() {
        let t = two_attr();
        let ats: Vec<Duration> = t.events().iter().map(|e| e.at).collect();
        // loc: 1h, 25h ; sal: 12h, 60h  -> merged 1h, 12h, 25h, 60h
        assert_eq!(
            ats,
            vec![D::hours(1), D::hours(12), D::hours(25), D::hours(60)]
        );
        let attrs: Vec<usize> = t.events().iter().map(|e| e.attr).collect();
        assert_eq!(attrs, vec![0, 1, 0, 1]);
    }

    #[test]
    fn tuple_states_count_transitions() {
        let t = two_attr();
        assert_eq!(t.num_states(), 5);
        assert_eq!(t.state_at(D::ZERO), 0);
        assert_eq!(t.state_at(D::minutes(30)), 0);
        assert_eq!(t.state_at(D::hours(1)), 1); // boundary fires
        assert_eq!(t.state_at(D::hours(13)), 2);
        assert_eq!(t.state_at(D::hours(26)), 3);
        assert_eq!(t.state_at(D::hours(61)), 4);
    }

    #[test]
    fn level_vectors_track_each_attribute() {
        let t = two_attr();
        assert_eq!(
            t.levels_at(D::ZERO),
            vec![Some(LevelId(0)), Some(LevelId(0))]
        );
        assert_eq!(
            t.levels_at(D::hours(2)),
            vec![Some(LevelId(1)), Some(LevelId(0))]
        );
        assert_eq!(
            t.levels_at(D::hours(26)),
            vec![None, Some(LevelId(1))] // location removed, salary degraded
        );
        assert_eq!(t.levels_at(D::hours(61)), vec![None, None]);
    }

    #[test]
    fn expunge_when_all_attributes_done() {
        let t = two_attr();
        assert_eq!(t.expunge_age(), Some(D::hours(60)));
        assert_eq!(t.shortest_step(), Some(D::hours(1)));
    }

    #[test]
    fn computability_condition() {
        let t = two_attr();
        // At 2h: levels are (d1, d0).
        let age = D::hours(2);
        assert!(t.computable_at(age, &[LevelId(1), LevelId(0)]));
        assert!(t.computable_at(age, &[LevelId(1), LevelId(1)])); // coarser ok
        assert!(!t.computable_at(age, &[LevelId(0), LevelId(0)])); // finer not
                                                                   // After location removal nothing involving it is computable.
        assert!(!t.computable_at(D::hours(26), &[LevelId(1), LevelId(1)]));
    }

    #[test]
    fn simultaneous_transitions_order_by_attribute() {
        let a = AttributeLcp::from_pairs(&[(0, D::hours(1))]).unwrap();
        let b = AttributeLcp::from_pairs(&[(0, D::hours(1))]).unwrap();
        let t = TupleLcp::combine(vec![a, b]);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].attr, 0);
        assert_eq!(t.events()[1].attr, 1);
        // Both fire at the same instant; state jumps by 2.
        assert_eq!(t.state_at(D::hours(1)), 2);
    }

    #[test]
    fn empty_tuple_lcp() {
        let t = TupleLcp::combine(vec![]);
        assert_eq!(t.num_states(), 1);
        assert_eq!(t.expunge_age(), None);
        assert_eq!(t.shortest_step(), None);
        assert!(t.computable_at(D::hours(5), &[]));
    }

    #[test]
    fn next_event_after_walks_timeline() {
        let t = two_attr();
        let e = t.next_event_after(D::hours(1)).unwrap();
        assert_eq!(e.at, D::hours(12));
        assert!(t.next_event_after(D::hours(60)).is_none());
    }

    #[test]
    fn final_transition_has_no_target_level() {
        let t = two_attr();
        let last_loc = t.events().iter().rfind(|e| e.attr == 0).unwrap();
        assert_eq!(last_loc.to_level, None);
        let first_loc = t.events().iter().find(|e| e.attr == 0).unwrap();
        assert_eq!(first_loc.to_level, Some(LevelId(1)));
    }
}
