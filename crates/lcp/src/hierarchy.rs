//! The [`Hierarchy`] trait — the degradation function `f_k`.
//!
//! Section II of the paper: "data subject to a predicate P expressed on a
//! demanded accuracy level k will be degraded before evaluating P, using a
//! degradation function `f_k` (based on the generalization tree(s))".
//!
//! A hierarchy knows, for a domain, how a value stored at accuracy level `j`
//! maps to its generalized form at any coarser level `k ≥ j`. Going *finer*
//! is impossible by construction — that is precisely the irreversibility the
//! model relies on: once the engine has rewritten a value to level `k`,
//! nobody (the server included) can recompute any level `< k`.

use instant_common::{Error, LevelId, Result, Value};

/// A domain generalization hierarchy ("one GT per domain", Section II).
pub trait Hierarchy: Send + Sync + std::fmt::Debug {
    /// Number of accuracy levels, **excluding** removal. Level 0 is the most
    /// accurate; `levels() - 1` is the coarsest retained form (the GT root).
    fn levels(&self) -> u8;

    /// The accuracy level at which `v` currently sits, or `None` when the
    /// value does not belong to this domain. `Removed` has no level.
    fn level_of(&self, v: &Value) -> Option<LevelId>;

    /// The degradation function `f_k`: the level-`k` generalization of `v`.
    ///
    /// Errors with [`Error::Accuracy`] when `k` is finer than `v`'s current
    /// level (level `k` is "not computable" in the paper's terms) and with
    /// [`Error::NotFound`] when `v` is not in the domain.
    fn generalize(&self, v: &Value, k: LevelId) -> Result<Value>;

    /// Residual information of a value at level `k`, in `[0, 1]`.
    ///
    /// 1.0 = fully accurate (level 0), 0.0 = no information (removed). The
    /// default is information-theoretic: the fraction of domain bits the
    /// level-`k` form still pins down. Experiments E4/E5 sum this over the
    /// store to get the paper's "amount of accurate personal information
    /// exposed to disclosure".
    fn residual_info(&self, v: &Value, k: LevelId) -> f64;

    /// Human-readable name of a level (e.g. "city"), for reports.
    fn level_name(&self, k: LevelId) -> String {
        format!("d{}", k.0)
    }

    /// Validate that `k` exists in this hierarchy.
    fn check_level(&self, k: LevelId) -> Result<()> {
        if k.0 < self.levels() {
            Ok(())
        } else {
            Err(Error::Accuracy(format!(
                "level d{} out of range (hierarchy has {} levels)",
                k.0,
                self.levels()
            )))
        }
    }

    /// Number of distinct values the domain exposes at level `k`.
    /// Used to size bitmap indexes and to reason about selectivity collapse
    /// (Section III: "OLTP queries become less selective").
    fn cardinality_at(&self, k: LevelId) -> u64;
}

/// Apply `f_k` to an optional value, passing `Removed` through untouched.
///
/// Degraded-past-`k` values yield `Err(Accuracy)` exactly as the trait does;
/// the query layer uses this to exclude non-computable subsets `ST_j` from
/// `σ_P,k` per the paper's semantics.
pub fn f_k(h: &dyn Hierarchy, v: &Value, k: LevelId) -> Result<Value> {
    if v.is_removed() {
        return Ok(Value::Removed);
    }
    h.generalize(v, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtree::GeneralizationTree;

    fn tiny_tree() -> GeneralizationTree {
        // root "World" -> {"EU" -> {"FR","NL"}, "US" -> {"CA"}}
        GeneralizationTree::builder("geo", &["leaf", "region", "world"])
            .path(&["FR", "EU", "World"])
            .path(&["NL", "EU", "World"])
            .path(&["CA", "US", "World"])
            .build()
            .unwrap()
    }

    #[test]
    fn f_k_passes_removed_through() {
        let t = tiny_tree();
        assert_eq!(
            f_k(&t, &Value::Removed, LevelId(0)).unwrap(),
            Value::Removed
        );
    }

    #[test]
    fn check_level_bounds() {
        let t = tiny_tree();
        assert!(t.check_level(LevelId(2)).is_ok());
        assert!(t.check_level(LevelId(3)).is_err());
    }

    #[test]
    fn f_k_rejects_refinement() {
        let t = tiny_tree();
        let eu = Value::Str("EU".into());
        // EU is level 1; asking for level 0 must fail (not computable).
        assert!(matches!(f_k(&t, &eu, LevelId(0)), Err(Error::Accuracy(_))));
    }
}
