//! # instant-lcp
//!
//! The Life Cycle Policy (LCP) degradation model of the paper, Section II:
//!
//! * [`gtree`] — **Generalization Trees** (Fig. 1): an explicit domain
//!   generalization hierarchy giving, per accuracy level, the value a datum
//!   takes during its lifetime.
//! * [`range`] — procedural numeric hierarchies (the paper's
//!   `RANGE1000 FOR P.SALARY`): integers generalize into aligned, widening
//!   intervals.
//! * [`hierarchy`] — the common [`hierarchy::Hierarchy`] trait plus the
//!   degradation function `f_k` shared by both forms.
//! * [`automaton`] — **attribute LCPs** (Fig. 2): a deterministic finite
//!   automaton `d0 → d1 → … → dn → ⊥` whose transitions fire after fixed
//!   retention delays.
//! * [`tuple`] — **tuple LCPs** (Fig. 3): the product automaton combining
//!   the LCPs of all degradable attributes of a tuple; it yields the tuple
//!   states `t_k` and the expunge time.
//! * [`policy`] — a small text DSL for declaring LCPs
//!   (`"address:1h -> city:1d -> region:1mo -> country:1mo"`).
//! * [`degrade`] — the [`degrade::Degrader`]: hierarchy + automaton bound
//!   together, computing `value_at(v0, age)` and the **residual-information
//!   exposure metric** used by the privacy experiments (E4/E5).

pub mod automaton;
pub mod degrade;
pub mod gtree;
pub mod hierarchy;
pub mod policy;
pub mod range;
pub mod tuple;

pub use automaton::{AttributeLcp, LcpPosition, LcpStage};
pub use degrade::Degrader;
pub use gtree::GeneralizationTree;
pub use hierarchy::Hierarchy;
pub use range::RangeHierarchy;
pub use tuple::{TupleEvent, TupleLcp};
