//! Attribute Life Cycle Policies (paper Fig. 2).
//!
//! "A Life Cycle Policy for an attribute is modelled by a deterministic
//! finite automaton as a set of degradable attribute states {d0,…,dn}
//! denoting the levels of accuracy of the corresponding attribute, a set of
//! transitions between those states and the associated time delays (TP)
//! after which these transitions are triggered."
//!
//! We follow the paper's simplifying assumptions: transitions are triggered
//! by time only, one LCP per degradable attribute, uniform across all tuples
//! of a store. The automaton is a chain `d0 →TP0 d1 →TP1 … dn →TPn ⊥`
//! (`⊥` = removed). Each stage pairs an accuracy level of the attribute's
//! hierarchy with the retention period spent at that level.

use instant_common::{Duration, Error, LevelId, Result, Timestamp};

/// One state of the automaton: spend `retention` at accuracy `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcpStage {
    /// Accuracy level in the attribute's hierarchy (d0 = leaves).
    pub level: LevelId,
    /// Time spent in this state before the next transition fires.
    pub retention: Duration,
}

/// Where a value sits in its life cycle at a given age.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcpPosition {
    /// In stage `i` of the automaton (index into [`AttributeLcp::stages`]).
    Stage(usize),
    /// Past the final stage: the value must have been removed.
    Expired,
}

/// A per-attribute LCP: the Fig. 2 automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeLcp {
    stages: Vec<LcpStage>,
    /// Cumulative transition times: `boundaries[i]` is the age at which the
    /// value *leaves* stage `i`.
    boundaries: Vec<Duration>,
}

impl AttributeLcp {
    /// Build from stages. Validates: non-empty, strictly increasing accuracy
    /// levels (degradation is monotone), and positive retention in every
    /// stage except that the *first* stage may have any positive duration —
    /// a zero-retention stage would make its state unobservable.
    pub fn new(stages: Vec<LcpStage>) -> Result<Self> {
        if stages.is_empty() {
            return Err(Error::Policy("LCP needs at least one stage".into()));
        }
        for pair in stages.windows(2) {
            if pair[1].level <= pair[0].level {
                return Err(Error::Policy(format!(
                    "LCP levels must strictly increase: d{} then d{}",
                    pair[0].level.0, pair[1].level.0
                )));
            }
        }
        for s in &stages {
            if s.retention == Duration::ZERO {
                return Err(Error::Policy(format!(
                    "stage d{} has zero retention (state would be unobservable)",
                    s.level.0
                )));
            }
        }
        let mut boundaries = Vec::with_capacity(stages.len());
        let mut acc = Duration::ZERO;
        for s in &stages {
            acc += s.retention;
            boundaries.push(acc);
        }
        Ok(AttributeLcp { stages, boundaries })
    }

    /// Convenience constructor from `(level, retention)` pairs.
    pub fn from_pairs(pairs: &[(u8, Duration)]) -> Result<Self> {
        Self::new(
            pairs
                .iter()
                .map(|&(l, d)| LcpStage {
                    level: LevelId(l),
                    retention: d,
                })
                .collect(),
        )
    }

    /// The paper's Figure 2 policy for the location attribute:
    /// address for 1 h → city for 1 day → region for 1 month →
    /// country for 1 month → removed.
    ///
    /// (Fig. 2 labels the delays `ι0 = 0 min, ι1 = 1 h, ι2 = 1 day,
    /// ι3 = 1 month`: the value *enters* d0 at 0 and each `ιk` is the time
    /// spent before the next hop; we give the final country state one month
    /// of retention before removal, the paper's trailing transition.)
    pub fn fig2_location() -> AttributeLcp {
        AttributeLcp::from_pairs(&[
            (0, Duration::hours(1)),
            (1, Duration::days(1)),
            (2, Duration::months(1)),
            (3, Duration::months(1)),
        ])
        .expect("fig2 policy is valid")
    }

    pub fn stages(&self) -> &[LcpStage] {
        &self.stages
    }

    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The stage index occupied at `age`, or `Expired`.
    pub fn position_at(&self, age: Duration) -> LcpPosition {
        match self.boundaries.iter().position(|b| age < *b) {
            Some(i) => LcpPosition::Stage(i),
            None => LcpPosition::Expired,
        }
    }

    /// The accuracy level in force at `age`, `None` once expired.
    pub fn level_at(&self, age: Duration) -> Option<LevelId> {
        match self.position_at(age) {
            LcpPosition::Stage(i) => Some(self.stages[i].level),
            LcpPosition::Expired => None,
        }
    }

    /// Ages at which transitions fire (leaving stage 0, 1, …, n). The last
    /// entry is the removal age.
    pub fn transition_ages(&self) -> &[Duration] {
        &self.boundaries
    }

    /// Absolute due time of the transition out of stage `i` for a datum
    /// inserted at `birth`.
    pub fn due_time(&self, birth: Timestamp, stage: usize) -> Option<Timestamp> {
        self.boundaries.get(stage).map(|d| birth + *d)
    }

    /// Age after which the value is removed (total lifetime).
    pub fn lifetime(&self) -> Duration {
        *self.boundaries.last().expect("non-empty")
    }

    /// The shortest retention of any stage. The paper's security claim:
    /// "an attack … must be repeated with a frequency smaller than the
    /// duration of the shortest degradation step" to observe every state —
    /// this is that duration.
    pub fn shortest_step(&self) -> Duration {
        self.stages
            .iter()
            .map(|s| s.retention)
            .min()
            .expect("non-empty")
    }

    /// The next transition strictly after `age`: `(stage_index_leaving,
    /// transition_age)`. `None` once expired.
    pub fn next_transition_after(&self, age: Duration) -> Option<(usize, Duration)> {
        self.boundaries
            .iter()
            .position(|b| *b > age)
            .map(|i| (i, self.boundaries[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_timeline() {
        let lcp = AttributeLcp::fig2_location();
        assert_eq!(lcp.num_stages(), 4);
        // Right after insert: accurate address.
        assert_eq!(lcp.level_at(Duration::ZERO), Some(LevelId(0)));
        // 59 minutes in: still address.
        assert_eq!(lcp.level_at(Duration::minutes(59)), Some(LevelId(0)));
        // At exactly 1 h the transition fires: city.
        assert_eq!(lcp.level_at(Duration::hours(1)), Some(LevelId(1)));
        // 1 h + 1 day: region.
        assert_eq!(
            lcp.level_at(Duration::hours(1) + Duration::days(1)),
            Some(LevelId(2))
        );
        // + 1 month: country.
        assert_eq!(
            lcp.level_at(Duration::hours(1) + Duration::days(1) + Duration::months(1)),
            Some(LevelId(3))
        );
        // + another month: gone.
        assert_eq!(lcp.level_at(lcp.lifetime()), None);
        assert_eq!(lcp.position_at(lcp.lifetime()), LcpPosition::Expired);
    }

    #[test]
    fn lifetime_is_sum_of_retentions() {
        let lcp = AttributeLcp::fig2_location();
        let expect =
            Duration::hours(1) + Duration::days(1) + Duration::months(1) + Duration::months(1);
        assert_eq!(lcp.lifetime(), expect);
    }

    #[test]
    fn shortest_step_matches_security_claim() {
        let lcp = AttributeLcp::fig2_location();
        assert_eq!(lcp.shortest_step(), Duration::hours(1));
    }

    #[test]
    fn transition_ages_are_cumulative() {
        let lcp = AttributeLcp::from_pairs(&[
            (0, Duration::secs(10)),
            (1, Duration::secs(20)),
            (2, Duration::secs(30)),
        ])
        .unwrap();
        assert_eq!(
            lcp.transition_ages(),
            &[Duration::secs(10), Duration::secs(30), Duration::secs(60)]
        );
    }

    #[test]
    fn next_transition_after_walks_the_chain() {
        let lcp =
            AttributeLcp::from_pairs(&[(0, Duration::secs(10)), (1, Duration::secs(20))]).unwrap();
        assert_eq!(
            lcp.next_transition_after(Duration::ZERO),
            Some((0, Duration::secs(10)))
        );
        assert_eq!(
            lcp.next_transition_after(Duration::secs(10)),
            Some((1, Duration::secs(30)))
        );
        assert_eq!(lcp.next_transition_after(Duration::secs(30)), None);
    }

    #[test]
    fn due_time_is_birth_plus_boundary() {
        let lcp = AttributeLcp::fig2_location();
        let birth = Timestamp::micros(5_000);
        assert_eq!(lcp.due_time(birth, 0), Some(birth + Duration::hours(1)));
        assert_eq!(lcp.due_time(birth, 4), None);
    }

    #[test]
    fn levels_may_skip_but_must_increase() {
        // Skipping levels is fine (d0 -> d2).
        assert!(
            AttributeLcp::from_pairs(&[(0, Duration::secs(1)), (2, Duration::secs(1)),]).is_ok()
        );
        // Repeating or decreasing is not.
        assert!(
            AttributeLcp::from_pairs(&[(1, Duration::secs(1)), (1, Duration::secs(1)),]).is_err()
        );
        assert!(
            AttributeLcp::from_pairs(&[(2, Duration::secs(1)), (0, Duration::secs(1)),]).is_err()
        );
    }

    #[test]
    fn zero_retention_rejected() {
        assert!(AttributeLcp::from_pairs(&[(0, Duration::ZERO)]).is_err());
        assert!(AttributeLcp::new(vec![]).is_err());
    }

    #[test]
    fn single_stage_policy_is_pure_retention() {
        // A one-stage LCP at d0 is exactly the classical "limited retention"
        // baseline the paper compares against.
        let lcp = AttributeLcp::from_pairs(&[(0, Duration::days(365))]).unwrap();
        assert_eq!(lcp.level_at(Duration::days(364)), Some(LevelId(0)));
        assert_eq!(lcp.level_at(Duration::days(365)), None);
    }

    #[test]
    fn position_monotone_in_age() {
        let lcp = AttributeLcp::fig2_location();
        let mut last = -1i64;
        for m in 0..(32 * 24 * 60 + 120) {
            let age = Duration::minutes(m as u64 * 30);
            let idx = match lcp.position_at(age) {
                LcpPosition::Stage(i) => i as i64,
                LcpPosition::Expired => i64::MAX,
            };
            assert!(idx >= last, "stage index must never decrease");
            last = idx;
        }
    }
}
