//! Text DSL for declaring Life Cycle Policies.
//!
//! Used by the SQL front end (`CREATE TABLE … DEGRADE <col> … LCP '<spec>'`)
//! and by configuration files of the experiment harness. Grammar:
//!
//! ```text
//! spec   := stage ( "->" stage )*
//! stage  := level ":" duration
//! level  := "d" digits | name          (name resolved via the hierarchy)
//! ```
//!
//! Examples:
//!
//! ```text
//! d0:1h -> d1:1d -> d2:1mo -> d3:1mo        -- Fig. 2 of the paper
//! address:1h -> city:1d -> region:1mo      -- named levels of a GT
//! exact:10min -> range1000:30d             -- named levels of a range hierarchy
//! ```

use instant_common::time::parse_duration;
use instant_common::{Error, LevelId, Result};

use crate::automaton::{AttributeLcp, LcpStage};
use crate::hierarchy::Hierarchy;

/// Parse an LCP spec. `hierarchy`, when provided, resolves symbolic level
/// names and bounds-checks numeric levels against the domain depth.
pub fn parse_lcp(spec: &str, hierarchy: Option<&dyn Hierarchy>) -> Result<AttributeLcp> {
    let mut stages = Vec::new();
    for (i, part) in spec.split("->").enumerate() {
        let part = part.trim();
        if part.is_empty() {
            return Err(Error::Parse(format!(
                "empty stage at position {i} in LCP '{spec}'"
            )));
        }
        let (level_str, dur_str) = part
            .split_once(':')
            .ok_or_else(|| Error::Parse(format!("stage '{part}' must be '<level>:<duration>'")))?;
        let level = resolve_level(level_str.trim(), hierarchy)?;
        let retention = parse_duration(dur_str.trim()).ok_or_else(|| {
            Error::Parse(format!(
                "bad duration '{}' in stage '{part}'",
                dur_str.trim()
            ))
        })?;
        stages.push(LcpStage { level, retention });
    }
    let lcp = AttributeLcp::new(stages)?;
    if let Some(h) = hierarchy {
        for s in lcp.stages() {
            h.check_level(s.level)?;
        }
    }
    Ok(lcp)
}

/// Render an LCP back to the DSL (inverse of [`parse_lcp`] up to whitespace).
pub fn format_lcp(lcp: &AttributeLcp) -> String {
    lcp.stages()
        .iter()
        .map(|s| format!("d{}:{}", s.level.0, s.retention))
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn resolve_level(s: &str, hierarchy: Option<&dyn Hierarchy>) -> Result<LevelId> {
    // Numeric form dN.
    if let Some(rest) = s.strip_prefix('d') {
        if let Ok(n) = rest.parse::<u8>() {
            return Ok(LevelId(n));
        }
    }
    // Symbolic form, resolved through the hierarchy's level names.
    if let Some(h) = hierarchy {
        for k in 0..h.levels() {
            if h.level_name(LevelId(k)).eq_ignore_ascii_case(s) {
                return Ok(LevelId(k));
            }
        }
        return Err(Error::Parse(format!(
            "unknown level '{s}' (hierarchy levels: {})",
            (0..h.levels())
                .map(|k| h.level_name(LevelId(k)))
                .collect::<Vec<_>>()
                .join(", ")
        )));
    }
    Err(Error::Parse(format!(
        "unknown level '{s}' and no hierarchy to resolve names against"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtree::location_tree_fig1;
    use crate::range::RangeHierarchy;
    use instant_common::Duration;

    #[test]
    fn parses_fig2_spec() {
        let lcp = parse_lcp("d0:1h -> d1:1d -> d2:1mo -> d3:1mo", None).unwrap();
        assert_eq!(lcp, AttributeLcp::fig2_location());
    }

    #[test]
    fn named_levels_resolve_through_gt() {
        let gt = location_tree_fig1();
        let lcp = parse_lcp(
            "address:1h -> city:1d -> region:1mo -> country:1mo",
            Some(&gt),
        )
        .unwrap();
        assert_eq!(lcp, AttributeLcp::fig2_location());
    }

    #[test]
    fn named_levels_resolve_through_range_hierarchy() {
        let h = RangeHierarchy::salary();
        let lcp = parse_lcp("exact:10min -> range1000:30d", Some(&h)).unwrap();
        assert_eq!(lcp.stages()[0].level, LevelId(0));
        assert_eq!(lcp.stages()[1].level, LevelId(2));
        assert_eq!(lcp.stages()[1].retention, Duration::days(30));
    }

    #[test]
    fn round_trip_through_format() {
        let lcp = AttributeLcp::fig2_location();
        let text = format_lcp(&lcp);
        assert_eq!(text, "d0:1h -> d1:1d -> d2:1mo -> d3:1mo");
        assert_eq!(parse_lcp(&text, None).unwrap(), lcp);
    }

    #[test]
    fn level_out_of_hierarchy_rejected() {
        let gt = location_tree_fig1(); // 4 levels: d0..d3
        assert!(parse_lcp("d0:1h -> d9:1d", Some(&gt)).is_err());
        // Without a hierarchy there is nothing to check against.
        assert!(parse_lcp("d0:1h -> d9:1d", None).is_ok());
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_lcp("", None).is_err());
        assert!(parse_lcp("d0 1h", None).is_err());
        assert!(parse_lcp("d0:soon", None).is_err());
        assert!(parse_lcp("d0:1h -> -> d1:1d", None).is_err());
        assert!(parse_lcp("city:1h", None).is_err()); // name needs hierarchy
        assert!(parse_lcp("dx:1h", None).is_err());
    }

    #[test]
    fn semantic_errors_bubble_from_automaton() {
        // decreasing levels
        assert!(parse_lcp("d1:1h -> d0:1d", None).is_err());
    }

    #[test]
    fn case_insensitive_level_names() {
        let gt = location_tree_fig1();
        assert!(parse_lcp("ADDRESS:1h -> CITY:1d", Some(&gt)).is_ok());
    }
}
