//! Explicit Generalization Trees (paper Fig. 1).
//!
//! "Given a domain generalization hierarchy for an attribute, a
//! generalization tree (GT) for that attribute gives, at various levels of
//! accuracy, the values that the attribute can take during its lifetime. …
//! a path from a particular node to the root of the GT expresses all
//! degraded forms the value of that node can take."
//!
//! The tree is stored as a flat arena (`Vec<Node>`), leaves at level 0 and
//! the root at level `levels-1`. Every node carries a label; labels must be
//! unique *within the tree* so that a stored degraded value (a bare string)
//! unambiguously identifies its node — this is what lets the engine apply
//! `f_k` to an already-degraded value without remembering where it came from.

use std::collections::HashMap;

use instant_common::{Error, LevelId, Result, Value};

use crate::hierarchy::Hierarchy;

#[derive(Debug, Clone)]
struct Node {
    label: String,
    level: u8,
    parent: Option<u32>,
    /// Number of leaves in this node's subtree (filled at build time);
    /// drives the residual-information metric.
    leaves_below: u64,
}

/// An immutable generalization tree over a string domain.
#[derive(Debug, Clone)]
pub struct GeneralizationTree {
    name: String,
    level_names: Vec<String>,
    nodes: Vec<Node>,
    by_label: HashMap<String, u32>,
    level_counts: Vec<u64>,
}

/// Incremental builder: add root-to-leaf (or leaf-to-root) label paths.
pub struct GtBuilder {
    name: String,
    level_names: Vec<String>,
    nodes: Vec<Node>,
    by_label: HashMap<String, u32>,
}

impl GeneralizationTree {
    /// Start building a GT named `name` with the given level names,
    /// ordered **from the most accurate (level 0) to the root**.
    pub fn builder(name: &str, level_names: &[&str]) -> GtBuilder {
        GtBuilder {
            name: name.to_string(),
            level_names: level_names.iter().map(|s| s.to_string()).collect(),
            nodes: Vec::new(),
            by_label: HashMap::new(),
        }
    }

    /// The domain name, e.g. `"location"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (level-0 values).
    pub fn leaf_count(&self) -> u64 {
        self.level_counts.first().copied().unwrap_or(0)
    }

    /// The full root-ward path of labels from `label`, starting at the value
    /// itself: exactly the paper's "all degraded forms the value … can take".
    pub fn degradation_path(&self, label: &str) -> Result<Vec<(LevelId, String)>> {
        let mut id = *self
            .by_label
            .get(label)
            .ok_or_else(|| Error::NotFound(format!("label '{label}' not in GT {}", self.name)))?;
        let mut path = Vec::new();
        loop {
            let node = &self.nodes[id as usize];
            path.push((LevelId(node.level), node.label.clone()));
            match node.parent {
                Some(p) => id = p,
                None => break,
            }
        }
        Ok(path)
    }

    fn node_of(&self, v: &Value) -> Result<u32> {
        let label = v
            .as_str()
            .map_err(|_| Error::NotFound(format!("GT {} holds strings, got {v}", self.name)))?;
        self.by_label
            .get(label)
            .copied()
            .ok_or_else(|| Error::NotFound(format!("label '{label}' not in GT {}", self.name)))
    }
}

impl GtBuilder {
    /// Add a leaf-to-root path of labels, length exactly `level_names.len()`.
    /// Shared prefixes (toward the root) merge; conflicting parentage errors
    /// at `build()`.
    pub fn path(mut self, labels_leaf_to_root: &[&str]) -> Self {
        // Stored transiently; validated in build(). We insert from the root
        // downward so parents exist before children.
        let depth = self.level_names.len();
        assert_eq!(
            labels_leaf_to_root.len(),
            depth,
            "path must name one label per level"
        );
        let mut parent: Option<u32> = None;
        for (i, label) in labels_leaf_to_root.iter().rev().enumerate() {
            let level = (depth - 1 - i) as u8;
            let id = match self.by_label.get(*label) {
                Some(&id) => {
                    let node = &self.nodes[id as usize];
                    // Record a conflict by poisoning the level; checked in build.
                    if node.level != level || node.parent != parent {
                        // Duplicate label used at a different position.
                        self.nodes[id as usize].level = u8::MAX;
                    }
                    id
                }
                None => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(Node {
                        label: (*label).to_string(),
                        level,
                        parent,
                        leaves_below: 0,
                    });
                    self.by_label.insert((*label).to_string(), id);
                    id
                }
            };
            parent = Some(id);
        }
        self
    }

    /// Finish the tree: validates single root, consistent levels, and
    /// computes per-node leaf counts.
    pub fn build(self) -> Result<GeneralizationTree> {
        let GtBuilder {
            name,
            level_names,
            mut nodes,
            by_label,
        } = self;
        if level_names.len() < 2 {
            return Err(Error::Policy(format!(
                "GT {name} needs at least two levels (value + one generalization)"
            )));
        }
        if nodes.is_empty() {
            return Err(Error::Policy(format!("GT {name} has no paths")));
        }
        let depth = level_names.len() as u8;
        // The GT may be a forest at the top level (several countries in
        // Fig. 1); an implicit ⊤ above the top level is understood. Every
        // parentless node must therefore sit at the coarsest level.
        for n in nodes.iter().filter(|n| n.parent.is_none()) {
            if n.level != depth - 1 && n.level != u8::MAX {
                return Err(Error::Policy(format!(
                    "GT {name}: root '{}' must be at the coarsest level {}",
                    n.label,
                    depth - 1
                )));
            }
        }
        for n in &nodes {
            if n.level == u8::MAX {
                return Err(Error::Policy(format!(
                    "GT {name}: label '{}' used inconsistently (levels or parents differ)",
                    n.label
                )));
            }
            if n.level >= depth {
                return Err(Error::Policy(format!(
                    "GT {name}: node '{}' at level {} exceeds depth {depth}",
                    n.label, n.level
                )));
            }
        }
        // Leaf counts: every level-0 node contributes 1 to each ancestor.
        let leaf_ids: Vec<u32> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.level == 0)
            .map(|(i, _)| i as u32)
            .collect();
        for leaf in &leaf_ids {
            let mut cur = Some(*leaf);
            while let Some(id) = cur {
                nodes[id as usize].leaves_below += 1;
                cur = nodes[id as usize].parent;
            }
        }
        let mut level_counts = vec![0u64; depth as usize];
        for n in &nodes {
            level_counts[n.level as usize] += 1;
        }
        Ok(GeneralizationTree {
            name,
            level_names,
            nodes,
            by_label,
            level_counts,
        })
    }
}

impl Hierarchy for GeneralizationTree {
    fn levels(&self) -> u8 {
        self.level_names.len() as u8
    }

    fn level_of(&self, v: &Value) -> Option<LevelId> {
        self.node_of(v)
            .ok()
            .map(|id| LevelId(self.nodes[id as usize].level))
    }

    fn generalize(&self, v: &Value, k: LevelId) -> Result<Value> {
        self.check_level(k)?;
        let mut id = self.node_of(v)?;
        let cur = self.nodes[id as usize].level;
        if cur > k.0 {
            return Err(Error::Accuracy(format!(
                "level d{} not computable: '{v}' already degraded to d{cur} in GT {}",
                k.0, self.name
            )));
        }
        while self.nodes[id as usize].level < k.0 {
            id = self.nodes[id as usize]
                .parent
                .expect("non-root node below requested level must have parent");
        }
        Ok(Value::Str(self.nodes[id as usize].label.clone()))
    }

    fn residual_info(&self, v: &Value, k: LevelId) -> f64 {
        let total = self.leaf_count() as f64;
        if total <= 1.0 {
            return 0.0;
        }
        let Ok(gen) = self.generalize(v, k) else {
            return 0.0;
        };
        let Ok(id) = self.node_of(&gen) else {
            return 0.0;
        };
        let below = self.nodes[id as usize].leaves_below.max(1) as f64;
        // Bits of the domain still determined, normalized: log(N/|subtree|)/log N.
        ((total / below).log2() / total.log2()).clamp(0.0, 1.0)
    }

    fn level_name(&self, k: LevelId) -> String {
        self.level_names
            .get(k.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("d{}", k.0))
    }

    fn cardinality_at(&self, k: LevelId) -> u64 {
        self.level_counts.get(k.0 as usize).copied().unwrap_or(0)
    }
}

/// The exact location GT of the paper's Figure 1 (address → city → region →
/// country), populated with a small France/Netherlands sample matching the
/// authors' affiliations. Used by unit tests and the model demo (E1).
pub fn location_tree_fig1() -> GeneralizationTree {
    GeneralizationTree::builder("location", &["address", "city", "region", "country"])
        .path(&[
            "Domaine de Voluceau",
            "Le Chesnay",
            "Ile-de-France",
            "France",
        ])
        .path(&[
            "45 avenue des Etats-Unis",
            "Versailles",
            "Ile-de-France",
            "France",
        ])
        .path(&["4 rue Jussieu", "Paris", "Ile-de-France", "France"])
        .path(&["Rue de la Paix", "Lyon", "Auvergne-Rhone-Alpes", "France"])
        .path(&["Drienerlolaan 5", "Enschede", "Overijssel", "Netherlands"])
        .path(&[
            "Hengelosestraat 99",
            "Enschede2",
            "Overijssel",
            "Netherlands",
        ])
        .path(&[
            "Science Park 123",
            "Amsterdam",
            "Noord-Holland",
            "Netherlands",
        ])
        .build()
        .expect("fig1 tree is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_tree_shape() {
        let t = location_tree_fig1();
        assert_eq!(t.levels(), 4);
        assert_eq!(t.leaf_count(), 7);
        assert_eq!(t.cardinality_at(LevelId(3)), 2); // France, Netherlands
        assert_eq!(t.level_name(LevelId(1)), "city");
    }

    #[test]
    fn generalize_walks_to_requested_level() {
        let t = location_tree_fig1();
        let addr = Value::Str("Domaine de Voluceau".into());
        assert_eq!(
            t.generalize(&addr, LevelId(1)).unwrap(),
            Value::Str("Le Chesnay".into())
        );
        assert_eq!(
            t.generalize(&addr, LevelId(3)).unwrap(),
            Value::Str("France".into())
        );
        // idempotent at own level
        assert_eq!(t.generalize(&addr, LevelId(0)).unwrap(), addr);
    }

    #[test]
    fn generalize_from_intermediate_level() {
        let t = location_tree_fig1();
        let city = Value::Str("Enschede".into());
        assert_eq!(
            t.generalize(&city, LevelId(3)).unwrap(),
            Value::Str("Netherlands".into())
        );
        // refinement is impossible — the irreversibility guarantee
        assert!(t.generalize(&city, LevelId(0)).is_err());
    }

    #[test]
    fn degradation_path_is_fig1_lifetime() {
        let t = location_tree_fig1();
        let path = t.degradation_path("4 rue Jussieu").unwrap();
        let labels: Vec<&str> = path.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec!["4 rue Jussieu", "Paris", "Ile-de-France", "France"]
        );
        assert_eq!(path[0].0, LevelId(0));
        assert_eq!(path[3].0, LevelId(3));
    }

    #[test]
    fn unknown_label_is_not_found() {
        let t = location_tree_fig1();
        assert!(matches!(
            t.generalize(&Value::Str("Atlantis".into()), LevelId(2)),
            Err(Error::NotFound(_))
        ));
        assert!(t.level_of(&Value::Str("Atlantis".into())).is_none());
    }

    #[test]
    fn non_string_value_rejected() {
        let t = location_tree_fig1();
        assert!(t.generalize(&Value::Int(5), LevelId(1)).is_err());
    }

    #[test]
    fn residual_info_decreases_along_path() {
        let t = location_tree_fig1();
        let addr = Value::Str("Drienerlolaan 5".into());
        let mut prev = f64::INFINITY;
        for k in 0..t.levels() {
            let r = t.residual_info(&addr, LevelId(k));
            assert!(r <= prev + 1e-12, "residual info must not increase");
            assert!((0.0..=1.0).contains(&r));
            prev = r;
        }
        assert!((t.residual_info(&addr, LevelId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_inconsistent_label_rejected() {
        let r = GeneralizationTree::builder("bad", &["leaf", "root"])
            .path(&["X", "R"])
            .path(&["R", "X"]) // same labels at swapped levels
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn top_level_forest_accepted() {
        // Several top-level nodes (countries) are legal: the implicit ⊤
        // root of the domain sits above them.
        let t = GeneralizationTree::builder("geo", &["leaf", "country"])
            .path(&["a", "FR"])
            .path(&["b", "NL"])
            .build()
            .unwrap();
        assert_eq!(t.cardinality_at(LevelId(1)), 2);
        assert_eq!(
            t.generalize(&Value::Str("a".into()), LevelId(1)).unwrap(),
            Value::Str("FR".into())
        );
    }

    #[test]
    fn empty_tree_rejected() {
        assert!(GeneralizationTree::builder("empty", &["a", "b"])
            .build()
            .is_err());
        assert!(GeneralizationTree::builder("shallow", &["only"])
            .path(&["x"])
            .build()
            .is_err());
    }

    #[test]
    fn cardinality_shrinks_toward_root() {
        let t = location_tree_fig1();
        for k in 1..t.levels() {
            assert!(
                t.cardinality_at(LevelId(k)) <= t.cardinality_at(LevelId(k - 1)),
                "cardinality must be non-increasing toward the root"
            );
        }
    }
}
