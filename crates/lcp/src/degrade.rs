//! The [`Degrader`]: a hierarchy bound to an attribute LCP.
//!
//! This is the unit the engine attaches to each degradable column: it knows
//! *what* a value becomes (the hierarchy's `f_k`) and *when* (the automaton's
//! timeline), and it scores the privacy exposure of a stored value — the
//! quantity the paper's first claim ("increased privacy wrt disclosure")
//! is about.

use std::sync::Arc;

use instant_common::{Duration, LevelId, Result, Timestamp, Value};

use crate::automaton::{AttributeLcp, LcpPosition};
use crate::hierarchy::Hierarchy;

/// Hierarchy + LCP for one degradable attribute.
#[derive(Debug, Clone)]
pub struct Degrader {
    hierarchy: Arc<dyn Hierarchy>,
    lcp: AttributeLcp,
}

impl Degrader {
    pub fn new(hierarchy: Arc<dyn Hierarchy>, lcp: AttributeLcp) -> Result<Self> {
        for s in lcp.stages() {
            hierarchy.check_level(s.level)?;
        }
        Ok(Degrader { hierarchy, lcp })
    }

    pub fn hierarchy(&self) -> &Arc<dyn Hierarchy> {
        &self.hierarchy
    }

    pub fn lcp(&self) -> &AttributeLcp {
        &self.lcp
    }

    /// The form an accurate value `v0` (inserted at age 0) takes at `age`.
    /// `Removed` once the life cycle has completed.
    pub fn value_at(&self, v0: &Value, age: Duration) -> Result<Value> {
        match self.lcp.position_at(age) {
            LcpPosition::Stage(i) => self.hierarchy.generalize(v0, self.lcp.stages()[i].level),
            LcpPosition::Expired => Ok(Value::Removed),
        }
    }

    /// Apply `f_k` to a stored (possibly already degraded) value.
    pub fn degrade_to(&self, v: &Value, k: LevelId) -> Result<Value> {
        crate::hierarchy::f_k(self.hierarchy.as_ref(), v, k)
    }

    /// The level in force at `age` (`None` = removed).
    pub fn level_at(&self, age: Duration) -> Option<LevelId> {
        self.lcp.level_at(age)
    }

    /// Exposure of a value stored at `level`: residual information in [0,1].
    /// `None` level (removed) scores 0.
    pub fn exposure(&self, v: &Value, level: Option<LevelId>) -> f64 {
        match level {
            Some(k) if !v.is_removed() => self.hierarchy.residual_info(v, k),
            _ => 0.0,
        }
    }

    /// Exposure of the value an observer sees if the store is snapshotted at
    /// `age` — the integrand of experiment E4's exposure-over-time curve.
    pub fn exposure_at(&self, v0: &Value, age: Duration) -> f64 {
        self.exposure(v0, self.level_at(age))
    }

    /// Absolute due time of the transition leaving stage `stage` for a datum
    /// born at `birth`.
    pub fn due_time(&self, birth: Timestamp, stage: usize) -> Option<Timestamp> {
        self.lcp.due_time(birth, stage)
    }

    /// Time-averaged exposure over the whole life cycle (closed form):
    /// `Σ_i retention_i · residual(level_i) / lifetime`. Used in reports to
    /// compare policies analytically against the measured curves.
    pub fn mean_lifetime_exposure(&self, v0: &Value) -> f64 {
        let total = self.lcp.lifetime().as_micros() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for s in self.lcp.stages() {
            let r = self.hierarchy.residual_info(v0, s.level);
            acc += r * s.retention.as_micros() as f64;
        }
        acc / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtree::location_tree_fig1;
    use crate::range::RangeHierarchy;
    use instant_common::Duration as D;

    fn location_degrader() -> Degrader {
        Degrader::new(
            Arc::new(location_tree_fig1()),
            AttributeLcp::fig2_location(),
        )
        .unwrap()
    }

    #[test]
    fn value_follows_fig2_timeline() {
        let d = location_degrader();
        let v0 = Value::Str("Domaine de Voluceau".into());
        assert_eq!(d.value_at(&v0, D::ZERO).unwrap(), v0);
        assert_eq!(
            d.value_at(&v0, D::hours(2)).unwrap(),
            Value::Str("Le Chesnay".into())
        );
        assert_eq!(
            d.value_at(&v0, D::days(2)).unwrap(),
            Value::Str("Ile-de-France".into())
        );
        assert_eq!(
            d.value_at(&v0, D::days(40)).unwrap(),
            Value::Str("France".into())
        );
        assert_eq!(d.value_at(&v0, D::days(400)).unwrap(), Value::Removed);
    }

    #[test]
    fn exposure_decreases_stepwise() {
        let d = location_degrader();
        let v0 = Value::Str("4 rue Jussieu".into());
        let ages = [D::ZERO, D::hours(2), D::days(2), D::days(40), D::days(400)];
        let exps: Vec<f64> = ages.iter().map(|a| d.exposure_at(&v0, *a)).collect();
        for pair in exps.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-12,
                "exposure must not increase: {exps:?}"
            );
        }
        assert!(
            (exps[0] - 1.0).abs() < 1e-9,
            "accurate state = full exposure"
        );
        assert_eq!(exps[4], 0.0, "removed = zero exposure");
    }

    #[test]
    fn degrade_to_respects_computability() {
        let d = location_degrader();
        let city = Value::Str("Paris".into());
        assert!(d.degrade_to(&city, LevelId(0)).is_err());
        assert_eq!(
            d.degrade_to(&city, LevelId(3)).unwrap(),
            Value::Str("France".into())
        );
        assert_eq!(
            d.degrade_to(&Value::Removed, LevelId(2)).unwrap(),
            Value::Removed
        );
    }

    #[test]
    fn constructor_rejects_levels_beyond_hierarchy() {
        let h: Arc<dyn Hierarchy> = Arc::new(RangeHierarchy::salary()); // 4 levels
        let bad = AttributeLcp::from_pairs(&[(0, D::hours(1)), (7, D::hours(1))]).unwrap();
        assert!(Degrader::new(h, bad).is_err());
    }

    #[test]
    fn mean_lifetime_exposure_between_bounds() {
        let d = location_degrader();
        let v0 = Value::Str("Drienerlolaan 5".into());
        let m = d.mean_lifetime_exposure(&v0);
        assert!(
            m > 0.0 && m < 1.0,
            "mean exposure {m} must be strictly inside (0,1)"
        );
        // A pure-retention policy (single d0 stage) has mean exposure 1.
        let ret = Degrader::new(
            Arc::new(location_tree_fig1()),
            AttributeLcp::from_pairs(&[(0, D::days(365))]).unwrap(),
        )
        .unwrap();
        assert!((ret.mean_lifetime_exposure(&v0) - 1.0).abs() < 1e-9);
        // And strictly larger than the degrading policy's — claim 1 in closed form.
        assert!(ret.mean_lifetime_exposure(&v0) > m);
    }

    #[test]
    fn numeric_degrader_end_to_end() {
        let d = Degrader::new(
            Arc::new(RangeHierarchy::salary()),
            AttributeLcp::from_pairs(&[(0, D::minutes(10)), (2, D::days(30)), (3, D::days(335))])
                .unwrap(),
        )
        .unwrap();
        let v0 = Value::Int(2340);
        assert_eq!(d.value_at(&v0, D::minutes(5)).unwrap(), Value::Int(2340));
        assert_eq!(
            d.value_at(&v0, D::hours(1)).unwrap(),
            Value::Range { lo: 2000, hi: 3000 }
        );
        assert_eq!(
            d.value_at(&v0, D::days(31)).unwrap(),
            Value::Range { lo: 0, hi: 10000 }
        );
        assert_eq!(d.value_at(&v0, D::days(366)).unwrap(), Value::Removed);
    }
}
