//! Property-based tests of the degradation model's invariants.
//!
//! These are the invariants the paper's semantics depend on:
//!
//! * **Irreversibility / composition**: for `j ≤ k`, `f_k(f_j(v)) = f_k(v)`
//!   — degrading in steps is the same as degrading directly, so the engine
//!   may rewrite values in place without losing the ability to serve any
//!   coarser accuracy level.
//! * **Monotone life cycle**: the accuracy level in force never becomes
//!   finer as a value ages; exposure never increases.
//! * **Tuple product consistency**: the tuple state counts exactly the
//!   attribute transitions that have fired, and the tuple is expunged iff
//!   every attribute's life cycle has completed.

use std::sync::Arc;

use instant_common::{Duration, LevelId, Value};
use instant_lcp::{
    automaton::AttributeLcp, gtree::GeneralizationTree, hierarchy::Hierarchy,
    range::RangeHierarchy, tuple::TupleLcp, Degrader,
};
use proptest::prelude::*;

/// A random 3-level GT: leaves grouped under mid nodes under one root.
fn arb_gtree() -> impl Strategy<Value = GeneralizationTree> {
    // groups: 1..5 mid nodes, each with 1..6 leaves
    proptest::collection::vec(1usize..6, 1..5).prop_map(|groups| {
        let mut b = GeneralizationTree::builder("t", &["leaf", "mid", "root"]);
        for (g, leaves) in groups.iter().enumerate() {
            for l in 0..*leaves {
                let leaf = format!("leaf_{g}_{l}");
                let mid = format!("mid_{g}");
                b = b.path(&[&leaf, &mid, "root"]);
            }
        }
        b.build().expect("generated tree is well-formed")
    })
}

fn arb_lcp(max_levels: u8) -> impl Strategy<Value = AttributeLcp> {
    // Random subset of levels (strictly increasing) with random retentions.
    let lv = max_levels;
    proptest::collection::vec((0..lv, 1u64..1000), 1..(lv as usize + 1)).prop_filter_map(
        "levels must strictly increase",
        |mut pairs| {
            pairs.sort_by_key(|p| p.0);
            pairs.dedup_by_key(|p| p.0);
            AttributeLcp::from_pairs(
                &pairs
                    .iter()
                    .map(|&(l, m)| (l, Duration::minutes(m)))
                    .collect::<Vec<_>>(),
            )
            .ok()
        },
    )
}

proptest! {
    #[test]
    fn f_k_composition_gtree(tree in arb_gtree(), leaf_pick in any::<prop::sample::Index>(),
                             j in 0u8..3, k in 0u8..3) {
        prop_assume!(j <= k);
        let leaves: Vec<String> = (0..tree.leaf_count())
            .map(|_| String::new())
            .collect();
        // Pick a leaf label deterministically from the index.
        let n = leaves.len();
        prop_assume!(n > 0);
        // Reconstruct leaf labels the way arb_gtree builds them.
        let label = {
            // walk all possible labels; degradation_path errors filter misses
            let mut found = None;
            'outer: for g in 0..8 {
                for l in 0..8 {
                    let cand = format!("leaf_{g}_{l}");
                    if tree.degradation_path(&cand).is_ok() {
                        found = Some(cand);
                        if leaf_pick.index(n) == 0 { break 'outer; }
                    }
                }
            }
            found.unwrap()
        };
        let v = Value::Str(label);
        let via_j = tree.generalize(&v, LevelId(j)).unwrap();
        let direct = tree.generalize(&v, LevelId(k)).unwrap();
        let composed = tree.generalize(&via_j, LevelId(k)).unwrap();
        prop_assert_eq!(composed, direct);
    }

    #[test]
    fn f_k_composition_ranges(v in -1_000_000i64..1_000_000, j in 0u8..4, k in 0u8..4) {
        prop_assume!(j <= k);
        let h = RangeHierarchy::new("t", &[1, 100, 1000, 10000], -1_000_000, 1_000_000).unwrap();
        let val = Value::Int(v);
        let via_j = h.generalize(&val, LevelId(j)).unwrap();
        let direct = h.generalize(&val, LevelId(k)).unwrap();
        let composed = h.generalize(&via_j, LevelId(k)).unwrap();
        prop_assert_eq!(composed, direct);
    }

    #[test]
    fn range_generalization_contains_value(v in -1_000_000i64..1_000_000, k in 1u8..4) {
        let h = RangeHierarchy::new("t", &[1, 100, 1000, 10000], -1_000_000, 1_000_000).unwrap();
        match h.generalize(&Value::Int(v), LevelId(k)).unwrap() {
            Value::Range { lo, hi } => {
                prop_assert!(lo <= v && v < hi);
                prop_assert_eq!(hi - lo, [1i64,100,1000,10000][k as usize]);
            }
            other => prop_assert!(false, "expected range, got {:?}", other),
        }
    }

    #[test]
    fn lcp_level_monotone_in_age(lcp in arb_lcp(4), ages in proptest::collection::vec(0u64..1_000_000, 1..50)) {
        let mut sorted = ages.clone();
        sorted.sort_unstable();
        let mut prev: Option<LevelId> = Some(LevelId(0));
        let mut expired = false;
        for a in sorted {
            let age = Duration::secs(a);
            match lcp.level_at(age) {
                Some(l) => {
                    prop_assert!(!expired, "level reappeared after expiry");
                    if let Some(p) = prev {
                        prop_assert!(l >= p, "level went finer with age");
                    }
                    prev = Some(l);
                }
                None => expired = true,
            }
        }
    }

    #[test]
    fn exposure_never_increases(lcp in arb_lcp(4), steps in 1u64..200) {
        let h = Arc::new(RangeHierarchy::new("t", &[1, 100, 1000, 10000], 0, 1_000_000).unwrap());
        let d = Degrader::new(h, lcp).unwrap();
        let v0 = Value::Int(123_456);
        let horizon = d.lcp().lifetime().as_micros() + 1000;
        let mut prev = f64::INFINITY;
        for i in 0..=steps {
            let age = Duration::micros(horizon * i / steps);
            let e = d.exposure_at(&v0, age);
            prop_assert!(e <= prev + 1e-12, "exposure increased");
            prop_assert!((0.0..=1.0).contains(&e));
            prev = e;
        }
        prop_assert_eq!(d.exposure_at(&v0, Duration::micros(horizon)), 0.0);
    }

    #[test]
    fn tuple_state_counts_fired_transitions(
        l1 in arb_lcp(4), l2 in arb_lcp(4), probe in 0u64..2_000_000
    ) {
        let t = TupleLcp::combine(vec![l1, l2]);
        let age = Duration::secs(probe);
        let k = t.state_at(age);
        let fired = t.events().iter().filter(|e| e.at <= age).count();
        prop_assert_eq!(k, fired);
        prop_assert!(k < t.num_states());
    }

    #[test]
    fn tuple_expunge_is_max_lifetime(l1 in arb_lcp(4), l2 in arb_lcp(4), l3 in arb_lcp(4)) {
        let lifetimes = [l1.lifetime(), l2.lifetime(), l3.lifetime()];
        let t = TupleLcp::combine(vec![l1, l2, l3]);
        prop_assert_eq!(t.expunge_age(), lifetimes.iter().copied().max());
        // Just before expunge at least one attribute still holds a value.
        let eps = Duration::micros(1);
        let before = t.expunge_age().unwrap().saturating_sub(eps);
        prop_assert!(t.levels_at(before).iter().any(|l| l.is_some()));
        // At expunge age all are gone.
        prop_assert!(t.levels_at(t.expunge_age().unwrap()).iter().all(|l| l.is_none()));
    }

    #[test]
    fn value_at_matches_manual_stage_lookup(lcp in arb_lcp(4), v in 0i64..1_000_000, probe in 0u64..10_000_000) {
        let h = Arc::new(RangeHierarchy::new("t", &[1, 100, 1000, 10000], 0, 1_000_000).unwrap());
        let d = Degrader::new(h.clone(), lcp.clone()).unwrap();
        let age = Duration::secs(probe);
        let got = d.value_at(&Value::Int(v), age).unwrap();
        match lcp.level_at(age) {
            Some(level) => {
                let expect = h.generalize(&Value::Int(v), level).unwrap();
                prop_assert_eq!(got, expect);
            }
            None => prop_assert_eq!(got, Value::Removed),
        }
    }
}
