//! Lock table: S/X tuple locks, IS/IX/S/X table locks, wait-die avoidance.
//!
//! Blocking waits use a condvar per lock table (coarse but simple); the
//! wait-die rule guarantees no deadlock: a transaction may only ever block
//! on *younger* lock holders, so wait-for edges always point from older to
//! younger and cannot cycle.

use std::collections::HashMap;

use parking_lot::{Condvar, Mutex};

use instant_common::{Error, Result, TableId, TupleId, TxId};

/// Lockable resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    Table(TableId),
    Tuple(TableId, TupleId),
}

/// Lock mode. Intention modes apply to tables only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Intention shared — will take S tuple locks below.
    IntentionShared,
    /// Intention exclusive — will take X tuple locks below.
    IntentionExclusive,
    /// Shared.
    Shared,
    /// Exclusive.
    Exclusive,
}

impl LockMode {
    /// Classical multigranularity compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IntentionShared, Exclusive) | (Exclusive, IntentionShared) => false,
            (IntentionShared, _) | (_, IntentionShared) => true,
            (IntentionExclusive, IntentionExclusive) => true,
            (IntentionExclusive, _) | (_, IntentionExclusive) => false,
            (Shared, Shared) => true,
            (Shared, Exclusive) | (Exclusive, Shared) | (Exclusive, Exclusive) => false,
        }
    }

    /// Does `self` already cover a request for `want` by the same tx?
    pub fn covers(self, want: LockMode) -> bool {
        use LockMode::*;
        match (self, want) {
            (Exclusive, _) => true,
            (Shared, Shared) | (Shared, IntentionShared) => true,
            (IntentionExclusive, IntentionExclusive) | (IntentionExclusive, IntentionShared) => {
                true
            }
            (IntentionShared, IntentionShared) => true,
            _ => self == want,
        }
    }
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders and their modes.
    holders: Vec<(TxId, LockMode)>,
}

impl LockState {
    fn conflicts_with(&self, tx: TxId, mode: LockMode) -> Vec<TxId> {
        self.holders
            .iter()
            .filter(|(h, m)| *h != tx && !m.compatible(mode))
            .map(|(h, _)| *h)
            .collect()
    }
}

#[derive(Debug, Default)]
struct Tables {
    locks: HashMap<Resource, LockState>,
    /// Resources held per transaction (for release-all at commit/abort).
    held: HashMap<TxId, Vec<Resource>>,
    /// Counters for experiment E10.
    conflicts: u64,
    aborts: u64,
    grants: u64,
}

/// The lock manager.
#[derive(Debug)]
pub struct LockManager {
    state: Mutex<Tables>, // lock-rank: 410
    cv: Condvar,
}

impl Default for LockManager {
    fn default() -> LockManager {
        LockManager {
            state: Mutex::ranked(410, Tables::default()),
            cv: Condvar::new(),
        }
    }
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Acquire `mode` on `res` for `tx`, blocking (wait) or aborting (die)
    /// per the wait-die rule. Re-entrant: covered requests return
    /// immediately; upgrades (S→X) are honored when no other holder blocks.
    pub fn lock(&self, tx: TxId, res: Resource, mode: LockMode) -> Result<()> {
        let mut state = self.state.lock();
        loop {
            let entry = state.locks.entry(res).or_default();
            // Already covered?
            if let Some((_, held)) = entry.holders.iter().find(|(h, _)| *h == tx) {
                if held.covers(mode) {
                    return Ok(());
                }
            }
            let blockers = entry.conflicts_with(tx, mode);
            if blockers.is_empty() {
                // Grant (possibly an upgrade: replace our entry).
                if let Some(slot) = entry.holders.iter_mut().find(|(h, _)| *h == tx) {
                    slot.1 = strongest(slot.1, mode);
                } else {
                    entry.holders.push((tx, mode));
                    state.held.entry(tx).or_default().push(res);
                }
                state.grants += 1;
                return Ok(());
            }
            state.conflicts += 1;
            // Wait-die: if any blocker is *older* (smaller id), we die.
            if blockers.iter().any(|b| b.0 < tx.0) {
                state.aborts += 1;
                return Err(Error::TxConflict(format!(
                    "{tx} dies waiting for older holder on {res:?}"
                )));
            }
            // All blockers younger: wait for them to finish.
            self.cv.wait(&mut state);
        }
    }

    /// Release every lock held by `tx` (strict 2PL: only at commit/abort).
    pub fn release_all(&self, tx: TxId) {
        let mut state = self.state.lock();
        if let Some(resources) = state.held.remove(&tx) {
            for res in resources {
                if let Some(entry) = state.locks.get_mut(&res) {
                    entry.holders.retain(|(h, _)| *h != tx);
                    if entry.holders.is_empty() {
                        state.locks.remove(&res);
                    }
                }
            }
        }
        self.cv.notify_all();
    }

    /// Locks currently held by `tx`.
    pub fn held_by(&self, tx: TxId) -> Vec<Resource> {
        self.state.lock().held.get(&tx).cloned().unwrap_or_default()
    }

    /// `(grants, conflicts, wait-die aborts)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        let s = self.state.lock();
        (s.grants, s.conflicts, s.aborts)
    }

    /// Number of resources with at least one holder.
    pub fn locked_resources(&self) -> usize {
        self.state.lock().locks.len()
    }
}

fn strongest(a: LockMode, b: LockMode) -> LockMode {
    use LockMode::*;
    let rank = |m: LockMode| match m {
        IntentionShared => 0,
        IntentionExclusive => 1,
        Shared => 2,
        Exclusive => 3,
    };
    if rank(a) >= rank(b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tuple(t: u16) -> Resource {
        Resource::Tuple(TableId(1), TupleId::new(1, t))
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!Exclusive.compatible(Exclusive));
        assert!(IntentionShared.compatible(IntentionExclusive));
        assert!(IntentionExclusive.compatible(IntentionExclusive));
        assert!(!IntentionExclusive.compatible(Shared));
        assert!(!IntentionShared.compatible(Exclusive));
        assert!(IntentionShared.compatible(Shared));
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(TxId(1), tuple(0), LockMode::Shared).unwrap();
        lm.lock(TxId(2), tuple(0), LockMode::Shared).unwrap();
        assert_eq!(lm.locked_resources(), 1);
        lm.release_all(TxId(1));
        lm.release_all(TxId(2));
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn younger_dies_on_conflict() {
        let lm = LockManager::new();
        lm.lock(TxId(1), tuple(0), LockMode::Exclusive).unwrap();
        let err = lm.lock(TxId(2), tuple(0), LockMode::Exclusive).unwrap_err();
        assert!(err.is_retryable());
        let (_, conflicts, aborts) = lm.counters();
        assert_eq!(conflicts, 1);
        assert_eq!(aborts, 1);
    }

    #[test]
    fn older_waits_for_younger() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxId(5), tuple(0), LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let waiter = std::thread::spawn(move || {
            // Tx 3 is older than 5 → must wait, then succeed.
            lm2.lock(TxId(3), tuple(0), LockMode::Exclusive).unwrap();
            lm2.release_all(TxId(3));
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        lm.release_all(TxId(5));
        waiter.join().unwrap();
    }

    #[test]
    fn reentrant_and_covered_requests() {
        let lm = LockManager::new();
        lm.lock(TxId(1), tuple(0), LockMode::Exclusive).unwrap();
        // X covers S and repeated X.
        lm.lock(TxId(1), tuple(0), LockMode::Shared).unwrap();
        lm.lock(TxId(1), tuple(0), LockMode::Exclusive).unwrap();
        assert_eq!(lm.held_by(TxId(1)).len(), 1);
    }

    #[test]
    fn upgrade_shared_to_exclusive_when_sole_holder() {
        let lm = LockManager::new();
        lm.lock(TxId(1), tuple(0), LockMode::Shared).unwrap();
        lm.lock(TxId(1), tuple(0), LockMode::Exclusive).unwrap();
        // Now nobody else can share.
        assert!(lm.lock(TxId(2), tuple(0), LockMode::Shared).is_err());
    }

    #[test]
    fn upgrade_blocked_by_other_reader_dies_if_older_holder() {
        let lm = LockManager::new();
        lm.lock(TxId(1), tuple(0), LockMode::Shared).unwrap();
        lm.lock(TxId(2), tuple(0), LockMode::Shared).unwrap();
        // Tx2 (younger) wants X but Tx1 (older) holds S → die.
        assert!(lm.lock(TxId(2), tuple(0), LockMode::Exclusive).is_err());
    }

    #[test]
    fn intention_locks_at_table_level() {
        let lm = LockManager::new();
        let table = Resource::Table(TableId(1));
        lm.lock(TxId(1), table, LockMode::IntentionShared).unwrap();
        lm.lock(TxId(2), table, LockMode::IntentionExclusive)
            .unwrap();
        // A full-table X (e.g. DROP) conflicts with both → younger dies.
        assert!(lm.lock(TxId(3), table, LockMode::Exclusive).is_err());
        lm.release_all(TxId(1));
        lm.release_all(TxId(2));
        lm.lock(TxId(4), table, LockMode::Exclusive).unwrap();
    }

    #[test]
    fn release_all_clears_and_wakes() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxId(10), tuple(1), LockMode::Exclusive).unwrap();
        lm.lock(TxId(10), tuple(2), LockMode::Shared).unwrap();
        assert_eq!(lm.held_by(TxId(10)).len(), 2);
        lm.release_all(TxId(10));
        assert!(lm.held_by(TxId(10)).is_empty());
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn no_deadlock_under_contention() {
        // 8 threads × 50 txs hammering 4 tuples with X locks: wait-die must
        // guarantee global progress (aborted txs retry with a NEW, larger id
        // — retrying with the same id could livelock against a younger
        // holder the victim must not wait for).
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = lm.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50u64 {
                    loop {
                        let id =
                            TxId(1000 + counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst));
                        let r1 = tuple((id.0 % 4) as u16);
                        let r2 = tuple(((id.0 + 1) % 4) as u16);
                        let ok = lm.lock(id, r1, LockMode::Exclusive).is_ok()
                            && lm.lock(id, r2, LockMode::Exclusive).is_ok();
                        lm.release_all(id);
                        if ok {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                let _ = t;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
