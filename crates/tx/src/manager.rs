//! Transaction lifecycle: id assignment, state machine, lock release.
//!
//! The engine distinguishes **user** transactions from **system**
//! transactions (degradation batches, vacuum). Both obey 2PL through the
//! shared [`LockManager`]; the distinction is informational (metrics,
//! experiment E10's reader-vs-degrader conflict attribution) and controls
//! WAL behaviour in the core crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use instant_common::{Error, Result, TxId};

use crate::locks::{LockManager, LockMode, Resource};

/// Who started the transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    User,
    /// Degradation / vacuum batch.
    System,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxState {
    Active,
    Committed,
    Aborted,
}

/// A live transaction handle. Commit or abort exactly once; dropping an
/// active handle aborts it (RAII safety).
pub struct TxHandle {
    id: TxId,
    kind: TxKind,
    state: Mutex<TxState>, // lock-rank: 400
    locks: Arc<LockManager>,
}

impl std::fmt::Debug for TxHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxHandle")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .finish()
    }
}

impl TxHandle {
    pub fn id(&self) -> TxId {
        self.id
    }

    pub fn kind(&self) -> TxKind {
        self.kind
    }

    pub fn is_active(&self) -> bool {
        *self.state.lock() == TxState::Active
    }

    fn check_active(&self) -> Result<()> {
        if self.is_active() {
            Ok(())
        } else {
            Err(Error::TxState(format!("{} is not active", self.id)))
        }
    }

    /// Acquire a lock under this transaction.
    pub fn lock(&self, res: Resource, mode: LockMode) -> Result<()> {
        self.check_active()?;
        self.locks.lock(self.id, res, mode)
    }

    /// Commit: release all locks. The caller (core engine) is responsible
    /// for WAL-sync *before* calling this — WAL discipline lives a layer up.
    pub fn commit(&self) -> Result<()> {
        let mut state = self.state.lock();
        if *state != TxState::Active {
            return Err(Error::TxState(format!("{} already finished", self.id)));
        }
        *state = TxState::Committed;
        drop(state);
        self.locks.release_all(self.id);
        Ok(())
    }

    /// Abort: release all locks.
    pub fn abort(&self) -> Result<()> {
        let mut state = self.state.lock();
        if *state != TxState::Active {
            return Err(Error::TxState(format!("{} already finished", self.id)));
        }
        *state = TxState::Aborted;
        drop(state);
        self.locks.release_all(self.id);
        Ok(())
    }
}

impl Drop for TxHandle {
    fn drop(&mut self) {
        if self.is_active() {
            let _ = self.abort();
        }
    }
}

/// Issues transaction ids and handles.
#[derive(Debug)]
pub struct TxManager {
    next_id: AtomicU64,
    locks: Arc<LockManager>,
    started_user: AtomicU64,
    started_system: AtomicU64,
}

impl Default for TxManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxManager {
    pub fn new() -> TxManager {
        TxManager {
            next_id: AtomicU64::new(1),
            locks: Arc::new(LockManager::new()),
            started_user: AtomicU64::new(0),
            started_system: AtomicU64::new(0),
        }
    }

    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// Begin a user transaction.
    pub fn begin(&self) -> TxHandle {
        self.begin_kind(TxKind::User)
    }

    /// Begin a system (degradation/vacuum) transaction.
    pub fn begin_system(&self) -> TxHandle {
        self.begin_kind(TxKind::System)
    }

    fn begin_kind(&self, kind: TxKind) -> TxHandle {
        let id = TxId(self.next_id.fetch_add(1, Ordering::SeqCst));
        match kind {
            TxKind::User => self.started_user.fetch_add(1, Ordering::Relaxed),
            TxKind::System => self.started_system.fetch_add(1, Ordering::Relaxed),
        };
        TxHandle {
            id,
            kind,
            state: Mutex::ranked(400, TxState::Active),
            locks: self.locks.clone(),
        }
    }

    /// `(user txs, system txs)` started.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.started_user.load(Ordering::Relaxed),
            self.started_system.load(Ordering::Relaxed),
        )
    }

    /// Run `f` in a user transaction, retrying on wait-die aborts up to
    /// `max_retries` times. The standard execution wrapper for OLTP work.
    pub fn run_with_retries<R>(
        &self,
        max_retries: usize,
        mut f: impl FnMut(&TxHandle) -> Result<R>,
    ) -> Result<R> {
        let mut attempt = 0;
        loop {
            let tx = self.begin();
            match f(&tx) {
                Ok(r) => {
                    tx.commit()?;
                    return Ok(r);
                }
                Err(e) if e.is_retryable() && attempt < max_retries => {
                    let _ = tx.abort();
                    attempt += 1;
                    std::thread::yield_now();
                }
                Err(e) => {
                    let _ = tx.abort();
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::{TableId, TupleId};

    fn res(t: u16) -> Resource {
        Resource::Tuple(TableId(1), TupleId::new(1, t))
    }

    #[test]
    fn ids_are_monotonic() {
        let tm = TxManager::new();
        let a = tm.begin();
        let b = tm.begin();
        assert!(b.id().0 > a.id().0);
    }

    #[test]
    fn commit_releases_locks() {
        let tm = TxManager::new();
        let tx = tm.begin();
        tx.lock(res(0), LockMode::Exclusive).unwrap();
        tx.commit().unwrap();
        let tx2 = tm.begin();
        tx2.lock(res(0), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn drop_aborts_and_releases() {
        let tm = TxManager::new();
        {
            let tx = tm.begin();
            tx.lock(res(1), LockMode::Exclusive).unwrap();
            // dropped without commit
        }
        let tx2 = tm.begin();
        tx2.lock(res(1), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn double_commit_rejected() {
        let tm = TxManager::new();
        let tx = tm.begin();
        tx.commit().unwrap();
        assert!(matches!(tx.commit(), Err(Error::TxState(_))));
        assert!(matches!(tx.abort(), Err(Error::TxState(_))));
    }

    #[test]
    fn lock_after_commit_rejected() {
        let tm = TxManager::new();
        let tx = tm.begin();
        tx.commit().unwrap();
        assert!(tx.lock(res(0), LockMode::Shared).is_err());
    }

    #[test]
    fn kinds_and_counters() {
        let tm = TxManager::new();
        let _u = tm.begin();
        let s = tm.begin_system();
        assert_eq!(s.kind(), TxKind::System);
        assert_eq!(tm.counters(), (1, 1));
    }

    #[test]
    fn run_with_retries_retries_conflicts() {
        let tm = TxManager::new();
        // An older transaction holds the lock; begun *before* the retry
        // wrapper runs so every wrapped attempt is younger and dies.
        let blocker = tm.begin();
        blocker.lock(res(5), LockMode::Exclusive).unwrap();
        let mut attempts = 0;
        let result: Result<()> = tm.run_with_retries(2, |tx| {
            attempts += 1;
            if attempts == 2 {
                // Free the resource during the second attempt.
                blocker.commit()?;
            }
            tx.lock(res(5), LockMode::Exclusive)?;
            Ok(())
        });
        assert!(result.is_ok());
        assert_eq!(attempts, 2);
    }

    #[test]
    fn run_with_retries_gives_up() {
        let tm = TxManager::new();
        let blocker = tm.begin();
        blocker.lock(res(6), LockMode::Exclusive).unwrap();
        let result: Result<()> = tm.run_with_retries(1, |tx| {
            tx.lock(res(6), LockMode::Exclusive)?;
            Ok(())
        });
        assert!(result.unwrap_err().is_retryable());
    }

    #[test]
    fn non_retryable_error_propagates_immediately() {
        let tm = TxManager::new();
        let mut calls = 0;
        let result: Result<()> = tm.run_with_retries(5, |_tx| {
            calls += 1;
            Err(Error::Policy("nope".into()))
        });
        assert!(matches!(result, Err(Error::Policy(_))));
        assert_eq!(calls, 1);
    }
}
