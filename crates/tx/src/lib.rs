//! # instant-tx
//!
//! Transactions for a degrading store — the paper's first challenge: "User
//! transactions inserting tuples with degradable attributes generate
//! effects all along the lifetime of the degradation process … This
//! significantly impacts transaction atomicity and durability and even
//! isolation considering potential conflicts between degradation steps and
//! reader transactions."
//!
//! The model implemented here:
//!
//! * **User transactions** are strictly two-phase-locked ([`locks`]), with
//!   shared/exclusive modes at tuple and table granularity plus intention
//!   modes at the table level.
//! * **Degradation steps run as system transactions**: each scheduler batch
//!   acquires exclusive tuple locks like any writer, so readers never
//!   observe a half-degraded tuple, and a reader holding a shared lock
//!   delays the degrader rather than seeing torn state. The resulting
//!   reader/degrader conflict rate is measured in experiment E10.
//! * **Deadlock avoidance is wait-die** (older waits, younger aborts with
//!   [`instant_common::Error::TxConflict`], which is retryable). Timestamps
//!   are transaction ids, which increase monotonically.
//!
//! Atomicity of the *user* view follows the paper's semantics: the user
//! transaction commits normally; the degradation process then owns the
//! tuple's remaining lifetime (its steps are system-transactional and
//! redo-logged — see `instant-wal`).

pub mod locks;
pub mod manager;

pub use locks::{LockManager, LockMode, Resource};
pub use manager::{TxHandle, TxManager};
