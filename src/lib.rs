//! # InstantDB
//!
//! A from-scratch Rust reproduction of **"InstantDB: Enforcing Timely
//! Degradation of Sensitive Data"** (Anciaux, Bouganim, van Heerde,
//! Pucheral, Apers — ICDE 2008): a relational engine in which sensitive
//! attributes undergo "a progressive and irreversible degradation from an
//! accurate state at collection time, to intermediate but still informative
//! fuzzy states, to complete disappearance".
//!
//! ## Quick start
//!
//! ```
//! use instantdb::prelude::*;
//! use std::sync::Arc;
//!
//! // A deterministic clock lets the example compress hours into one call.
//! let clock = MockClock::new();
//! let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
//! let mut session = Session::new(db.clone());
//!
//! // Register the paper's Fig. 1 location tree and create a table whose
//! // location column follows the Fig. 2 life cycle policy.
//! session.register_hierarchy("location_gt", Arc::new(location_tree_fig1()));
//! session.execute(
//!     "CREATE TABLE person (id INT INDEXED, \
//!      location TEXT DEGRADE USING location_gt \
//!        LCP 'address:1h -> city:1d -> region:1mo -> country:1mo' INDEXED)",
//! ).unwrap();
//! session.execute("INSERT INTO person VALUES (1, '4 rue Jussieu')").unwrap();
//!
//! // A few simulated hours later the address has degraded to its city…
//! clock.advance(Duration::hours(6));
//! db.pump_degradation().unwrap();
//!
//! // …and a query at city accuracy sees exactly that.
//! session.execute(
//!     "DECLARE PURPOSE DEMO SET ACCURACY LEVEL CITY FOR LOCATION",
//! ).unwrap();
//! let rows = session.execute("SELECT location FROM person").unwrap().rows();
//! assert_eq!(rows.rows[0][0], Value::Str("Paris".into()));
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`common`] | values, clock, ids, codec, errors |
//! | [`lcp`] | generalization trees, LCP automata, tuple LCPs |
//! | [`storage`] | pages, buffer pool, heap, secure delete |
//! | [`wal`] | sealed WAL, key shredding, recovery |
//! | [`index`] | B+-tree, bitmap, multi-level index |
//! | [`tx`] | 2PL locks, wait-die, transactions |
//! | [`core`] | catalog, scheduler, SQL, the [`prelude::Db`] engine |
//! | [`server`] | TCP front-end: wire protocol, session pool, admission control |
//! | [`workload`] | generators and attacker models |

pub use instant_common as common;
pub use instant_core as core;
pub use instant_index as index;
pub use instant_lcp as lcp;
pub use instant_server as server;
pub use instant_storage as storage;
pub use instant_tx as tx;
pub use instant_wal as wal;
pub use instant_workload as workload;

/// The one-stop import for applications.
pub mod prelude {
    pub use instant_common::{
        Clock, DataType, Duration, Error, LevelId, MockClock, Result, SharedClock, SystemClock,
        Timestamp, TupleId, Value,
    };
    pub use instant_core::baseline::{protected_location_schema, Protection, FOREVER};
    pub use instant_core::daemon::{CheckpointReport, Checkpointer, DegradationDaemon};
    pub use instant_core::db::{Db, DbConfig, PumpReport, WalMode};
    pub use instant_core::metrics::{
        exposure_of_db, exposure_of_table, total_exposure, wal_stats, WalStats,
    };
    pub use instant_core::query::exec::{QueryOutput, QueryResult};
    pub use instant_core::query::session::{HierarchyRegistry, QuerySemantics, Session};
    pub use instant_core::schema::{Column, ColumnKind, TableSchema};
    pub use instant_core::{GroupCommitConfig, GroupCommitStats};
    pub use instant_lcp::gtree::{location_tree_fig1, GeneralizationTree};
    pub use instant_lcp::{AttributeLcp, Degrader, Hierarchy, RangeHierarchy, TupleLcp};
    pub use instant_server::{
        server_stats, Client, ClientConfig, Server, ServerConfig, ServerStats,
    };
    pub use instant_storage::SecurePolicy;
    pub use instant_wal::{SegmentConfig, SegmentStats};
    pub use instant_workload::attacker::SnapshotAttacker;
    pub use instant_workload::events::{EventStream, EventStreamConfig};
    pub use instant_workload::location::{LocationDomain, LocationShape};
}

#[cfg(test)]
mod facade_tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_links() {
        let clock = MockClock::new();
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        assert_eq!(db.now(), Timestamp::ZERO);
    }
}
