//! Location-tracking service — the paper's motivating scenario.
//!
//! "Cell phones give location information … The data ends up in a database
//! somewhere, where it can be queried for various purposes."
//!
//! A synthetic phone fleet feeds location events into a degrading store for
//! a simulated week. Two consumers query concurrently with the ingest:
//! a *user-facing* service that needs recent accurate positions, and an
//! *analytics* service that works at country level — demonstrating the
//! usability claim: degraded data still serves the long-lived purpose while
//! accurate exposure stays bounded.
//!
//! Run with: `cargo run --release --example location_tracking`

use std::sync::Arc;

use instantdb::prelude::*;
use instantdb::workload::events::{EventStream, EventStreamConfig};
use instantdb::workload::location::{LocationDomain, LocationShape};

fn main() -> Result<()> {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(DbConfig::default(), clock.shared())?);
    let mut session = Session::new(db.clone());

    let domain = LocationDomain::generate(LocationShape::default(), 0.9);
    session.register_hierarchy("geo", domain.hierarchy());

    // Position fixes stay accurate for 1 h (navigation), city-level for a
    // day (local recommendations), region for a week, country for a month
    // (aggregate statistics), then vanish.
    session.execute(
        "CREATE TABLE events (\
           id INT INDEXED, \
           user TEXT, \
           location TEXT DEGRADE USING geo \
             LCP 'address:1h -> city:1d -> region:7d -> country:30d' INDEXED, \
           salary INT)",
    )?;

    let mut stream = EventStream::new(
        EventStreamConfig {
            events_per_hour: 60.0,
            users: 200,
            ..Default::default()
        },
        &domain,
        42,
        clock.now(),
    );

    // Simulate one week, pumping degradation every simulated hour.
    let horizon = clock.now() + Duration::days(7);
    let mut inserted = 0usize;
    let mut pending: Vec<_> = stream.until(horizon);
    pending.reverse(); // pop() from the front of the timeline
    while let Some(event) = pending.pop() {
        // Advance the clock to the event's arrival and run due degradation.
        if event.at > clock.now() {
            clock.set(event.at);
            db.pump_degradation()?;
        }
        db.insert("events", &event.row)?;
        inserted += 1;
    }
    clock.set(horizon);
    db.pump_degradation()?;

    println!("ingested {inserted} location fixes over a simulated week\n");

    let table = db.catalog().get("events")?;
    let occupancy = table
        .index_occupancy(instantdb::common::ColumnId(2))
        .expect("location is indexed");
    println!("accuracy-level occupancy (address, city, region, country):");
    println!("  {occupancy:?}\n");

    // Consumer 1: user-facing service — needs accurate recent fixes.
    session.clear_purpose();
    let recent = session
        .execute("SELECT id, user, location FROM events")?
        .rows();
    println!(
        "user-facing service (accurate level): {} fixes from the last hour visible",
        recent.rows.len()
    );

    // Consumer 2: analytics at country level — sees almost everything.
    session.execute("DECLARE PURPOSE STATS SET ACCURACY LEVEL COUNTRY FOR LOCATION")?;
    let per_country = session
        .execute("SELECT location FROM events WHERE location = 'Country00'")?
        .rows();
    let all = session.execute("SELECT id FROM events")?.rows();
    println!(
        "analytics service (country level): {} of {} fixes visible, {} in Country00",
        all.rows.len(),
        table.live_count()?,
        per_country.rows.len()
    );

    // The privacy ledger: how much accurate information does the store hold?
    let reports = exposure_of_db(&db)?;
    for r in &reports {
        println!(
            "\nexposure[{}]: {} tuples, {:.1} residual bits-worth, \
             {} accurate / {} degraded / {} removed values",
            r.table,
            r.tuples,
            r.total_exposure,
            r.accurate_values,
            r.degraded_values,
            r.removed_values
        );
        println!("stage histogram: {:?}", r.stage_histogram);
    }
    Ok(())
}
