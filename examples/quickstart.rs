//! Quickstart: the paper's model end to end in one file.
//!
//! Creates the PERSON table of the paper's running example (location
//! following Fig. 2's LCP, salary degrading into ranges), inserts a few
//! tuples, fast-forwards the clock through the whole life cycle, and shows
//! what queries at different declared purposes see at each stage.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use instantdb::prelude::*;

fn main() -> Result<()> {
    // A mock clock compresses the paper's "1 hour / 1 day / 1 month" delays.
    let clock = MockClock::new();
    let db = Arc::new(Db::open(DbConfig::default(), clock.shared())?);
    let mut session = Session::new(db.clone());

    // Domains: the exact Fig. 1 location tree + the salary range hierarchy.
    session.register_hierarchy("location_gt", Arc::new(location_tree_fig1()));
    session.register_hierarchy("salary_ranges", Arc::new(RangeHierarchy::salary()));

    session.execute(
        "CREATE TABLE person (\
           id INT INDEXED, \
           name TEXT, \
           location TEXT DEGRADE USING location_gt \
             LCP 'address:1h -> city:1d -> region:1mo -> country:1mo' INDEXED, \
           salary INT DEGRADE USING salary_ranges \
             LCP 'exact:1h -> range1000:1mo -> range10000:1mo')",
    )?;

    for (id, name, loc, sal) in [
        (1, "alice", "4 rue Jussieu", 2340),
        (2, "bob", "Domaine de Voluceau", 2890),
        (3, "carol", "Drienerlolaan 5", 3500),
    ] {
        session.execute(&format!(
            "INSERT INTO person VALUES ({id}, '{name}', '{loc}', {sal})"
        ))?;
    }

    println!("t = 0: freshly collected, fully accurate");
    show(&mut session, None)?;

    clock.advance(Duration::hours(6));
    db.pump_degradation()?;
    println!("\nt = 6h: locations are cities, salaries are 1000-bands");
    show(
        &mut session,
        Some("DECLARE PURPOSE P SET ACCURACY LEVEL CITY FOR LOCATION, RANGE1000 FOR SALARY"),
    )?;

    clock.advance(Duration::days(2));
    db.pump_degradation()?;
    println!("\nt = 2d6h: locations are regions");
    show(
        &mut session,
        Some("DECLARE PURPOSE P SET ACCURACY LEVEL REGION FOR LOCATION, RANGE1000 FOR SALARY"),
    )?;

    clock.advance(Duration::months(1));
    db.pump_degradation()?;
    println!("\nt = ~1mo: countries and coarse salary bands — the paper's example query:");
    session.execute(
        "DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION, \
         RANGE10000 FOR P.SALARY",
    )?;
    let r = session
        .execute("SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%'")?
        .rows();
    for row in &r.rows {
        println!(
            "  {:?}",
            row.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    clock.advance(Duration::months(3));
    let report = db.pump_degradation()?;
    println!(
        "\nt = ~4mo: life cycles complete — {} tuples expunged, {} live rows remain",
        report.expunged,
        db.catalog().get("person")?.live_count()?
    );
    println!("total residual exposure: {:.3}", total_exposure(&db)?);
    Ok(())
}

fn show(session: &mut Session, purpose: Option<&str>) -> Result<()> {
    if let Some(p) = purpose {
        session.execute(p)?;
    }
    let r = session.execute("SELECT * FROM person")?.rows();
    for row in &r.rows {
        println!(
            "  {}",
            row.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
    Ok(())
}
