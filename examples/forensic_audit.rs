//! Forensic audit — Section III's unrecoverability challenge, live.
//!
//! "Traditional DBMSs cannot even guarantee the non-recoverability of
//! deleted data due to different forms of unintended retention in the data
//! space, the indexes and the logs." This example plays the offline
//! attacker against two engine configurations:
//!
//! * **classical**: naive deletes, plaintext WAL — the attacker recovers
//!   degraded addresses from heap residue and from the log;
//! * **InstantDB**: secure overwrite + sealed WAL + checkpoint key
//!   shredding — the attacker recovers nothing at any point.
//!
//! The attacker hunts *fragments* (street names), the realistic forensic
//! move: an in-place rewrite overwrites the record prefix, but a classical
//! engine leaves the tail bytes in the page.
//!
//! Run with: `cargo run --example forensic_audit`

use std::sync::Arc;

use instantdb::prelude::*;
use instantdb::workload::attacker::{forensic_needles, forensic_scan};

const ADDRESSES: [&str; 4] = [
    "4 rue Jussieu",
    "Domaine de Voluceau",
    "Drienerlolaan 5",
    "Science Park 123",
];

/// Distinctive fragments a forensic analyst would grep for.
const FRAGMENTS: [&str; 4] = ["Jussieu", "Voluceau", "Drienerlolaan", "Science Park"];

fn run(config_name: &str, secure: SecurePolicy, wal_mode: WalMode) -> Result<()> {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(
        DbConfig {
            secure,
            wal_mode,
            ..DbConfig::default()
        },
        clock.shared(),
    )?);
    let mut session = Session::new(db.clone());
    session.register_hierarchy("geo", Arc::new(location_tree_fig1()));
    session.execute(
        "CREATE TABLE person (id INT, location TEXT DEGRADE USING geo \
         LCP 'address:1h -> city:1d -> region:1mo -> country:1mo')",
    )?;
    for (i, a) in ADDRESSES.iter().enumerate() {
        session.execute(&format!("INSERT INTO person VALUES ({i}, '{a}')"))?;
    }

    // Age everything past the accurate stage.
    clock.advance(Duration::hours(3));
    db.pump_degradation()?;

    let scanner = forensic_needles(FRAGMENTS.iter().copied());

    // Attack 1: disk + log stolen after degradation, before any checkpoint.
    let r1 = forensic_scan(&db, &scanner)?;
    // Attack 2: after a checkpoint (log truncated, keys shredded).
    db.checkpoint()?;
    let r2 = forensic_scan(&db, &scanner)?;

    println!(
        "{config_name:<12} post-degradation: {}/{} fragments recoverable; \
         post-checkpoint: {}/{}",
        r1.recovered.len(),
        FRAGMENTS.len(),
        r2.recovered.len(),
        FRAGMENTS.len(),
    );
    for r in &r2.recovered {
        println!(
            "             still leaking after checkpoint: {}",
            String::from_utf8_lossy(r)
        );
    }
    Ok(())
}

fn main() -> Result<()> {
    println!("offline forensic attack (fragment grep over raw heap + WAL images):\n");
    run("classical", SecurePolicy::Naive, WalMode::Plain)?;
    run("instantdb", SecurePolicy::Overwrite, WalMode::Sealed)?;
    println!(
        "\nThe classical engine leaks degraded addresses from page residue and \
         the plaintext\nlog until (at least) the next checkpoint truncation; \
         the degradation-aware engine\nnever exposes them: pages are \
         overwritten at the degradation step itself and log\nimages are \
         sealed under keys the checkpoint shreds."
    );
    Ok(())
}
