//! Degradation vs the paper's baselines — claim 1 made visible.
//!
//! Four stores ingest the same event stream under different protection
//! schemes (none / 1-year retention / static anonymization / Fig. 2-style
//! degradation). A snapshot attacker strikes at a fixed time; the example
//! prints how much accurate information each scheme handed over.
//!
//! Run with: `cargo run --release --example retention_vs_degradation`

use std::sync::Arc;

use instantdb::prelude::*;
use instantdb::workload::events::{EventStream, EventStreamConfig};
use instantdb::workload::location::{LocationDomain, LocationShape};

fn main() -> Result<()> {
    let domain = LocationDomain::generate(LocationShape::default(), 0.9);

    let schemes: Vec<Protection> = vec![
        Protection::None,
        Protection::Retention(Duration::days(365)),
        Protection::StaticAnon(LevelId(2), FOREVER),
        Protection::Degradation(AttributeLcp::from_pairs(&[
            (0, Duration::hours(1)),
            (1, Duration::days(1)),
            (2, Duration::days(7)),
            (3, Duration::days(30)),
        ])?),
    ];

    println!(
        "{:<22} {:>8} {:>12} {:>14} {:>16}",
        "scheme", "tuples", "exposure", "mean/value", "accurate values"
    );
    for scheme in &schemes {
        let clock = MockClock::new();
        let db = Arc::new(Db::open(DbConfig::default(), clock.shared())?);
        db.create_table(protected_location_schema(
            "events",
            domain.hierarchy(),
            scheme,
        )?)?;

        // Identical stream for every scheme (same seed).
        let mut stream = EventStream::new(
            EventStreamConfig {
                events_per_hour: 30.0,
                ..Default::default()
            },
            &domain,
            7,
            clock.now(),
        );
        let horizon = clock.now() + Duration::days(14);
        let mut events = stream.until(horizon);
        events.reverse();
        while let Some(e) = events.pop() {
            if e.at > clock.now() {
                clock.set(e.at);
                db.pump_degradation()?;
            }
            // The baseline schema is (id, user, location).
            db.insert(
                "events",
                &[e.row[0].clone(), e.row[1].clone(), e.row[2].clone()],
            )?;
        }
        clock.set(horizon);
        db.pump_degradation()?;

        // The attacker snapshots the live store two weeks in.
        let mut attacker = SnapshotAttacker::new();
        let obs = attacker.snapshot(&db)?;
        let report = &obs.reports[0];
        println!(
            "{:<22} {:>8} {:>12.2} {:>14.4} {:>16}",
            scheme.label(),
            report.tuples,
            report.total_exposure,
            report.mean_exposure(),
            obs.accurate_values.len(),
        );
    }

    println!(
        "\nReading: 'exposure' is residual information (1.0 = one fully \
         accurate value).\nDegradation keeps weeks of history usable at \
         coarse accuracy while handing the\nattacker orders of magnitude \
         fewer accurate values than retention."
    );
    Ok(())
}
