//! Forensic integration tests (experiment E8's correctness assertions).
//!
//! After degradation has retired a state, no configuration channel of the
//! degradation-aware engine may still reveal it: not the heap image, not
//! the WAL image, not the index. The classical configuration *must* leak
//! (that's the baseline the paper argues against — if it stopped leaking,
//! the experiment would be measuring nothing).

use std::sync::Arc;

use instantdb::prelude::*;
use instantdb::workload::attacker::{forensic_needles, forensic_scan};

const FRAGMENTS: [&str; 3] = ["Jussieu", "Voluceau", "Drienerlolaan"];
const ADDRESSES: [&str; 3] = ["4 rue Jussieu", "Domaine de Voluceau", "Drienerlolaan 5"];

fn build(secure: SecurePolicy, wal_mode: WalMode) -> (MockClock, Arc<Db>) {
    let clock = MockClock::new();
    let db = Arc::new(
        Db::open(
            DbConfig {
                secure,
                wal_mode,
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap(),
    );
    let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
    db.create_table(
        TableSchema::new(
            "person",
            vec![
                Column::stable("id", DataType::Int),
                Column::degradable("location", DataType::Str, gt, AttributeLcp::fig2_location())
                    .unwrap()
                    .with_index(),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    for (i, a) in ADDRESSES.iter().enumerate() {
        db.insert("person", &[Value::Int(i as i64), Value::Str((*a).into())])
            .unwrap();
    }
    (clock, db)
}

#[test]
fn secure_engine_leaks_nothing_after_degradation() {
    let (clock, db) = build(SecurePolicy::Overwrite, WalMode::Sealed);
    clock.advance(Duration::hours(2));
    db.pump_degradation().unwrap();
    let scanner = forensic_needles(FRAGMENTS.iter().copied());
    // Even BEFORE checkpoint: heap overwritten, WAL sealed.
    let r = forensic_scan(&db, &scanner).unwrap();
    assert!(
        r.clean(),
        "sealed+overwrite engine leaked: {:?}",
        r.recovered
            .iter()
            .map(|v| String::from_utf8_lossy(v).to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn classical_engine_leaks_from_heap_and_log() {
    let (clock, db) = build(SecurePolicy::Naive, WalMode::Plain);
    clock.advance(Duration::hours(2));
    db.pump_degradation().unwrap();
    let scanner = forensic_needles(FRAGMENTS.iter().copied());
    let r = forensic_scan(&db, &scanner).unwrap();
    assert!(
        !r.clean(),
        "the classical baseline is supposed to leak — measurement broken?"
    );
    assert!(
        r.occurrences >= FRAGMENTS.len(),
        "expected hits in heap and log"
    );
}

#[test]
fn plain_wal_is_the_only_leak_with_secure_heap() {
    // Secure heap + plaintext WAL: the log is the residual channel — this
    // isolates why the paper says the *logs* must be revisited too.
    let (clock, db) = build(SecurePolicy::Overwrite, WalMode::Plain);
    clock.advance(Duration::hours(2));
    db.pump_degradation().unwrap();
    let scanner = forensic_needles(FRAGMENTS.iter().copied());
    let images = db.forensic_images().unwrap();
    let heap_img = images.iter().find(|(n, _)| n == "heap").unwrap();
    let wal_img = images.iter().find(|(n, _)| n == "wal").unwrap();
    let heap_report = scanner.scan([heap_img.1.as_slice()]);
    let wal_report = scanner.scan([wal_img.1.as_slice()]);
    assert!(heap_report.clean(), "secure heap must hold no pre-image");
    assert!(
        !wal_report.clean(),
        "plaintext WAL retains the insert images"
    );
    // Checkpoint truncation closes even that channel.
    db.checkpoint().unwrap();
    let r = forensic_scan(&db, &scanner).unwrap();
    assert!(r.clean());
}

#[test]
fn expunged_tuples_leave_no_trace_in_secure_mode() {
    let (clock, db) = build(SecurePolicy::Overwrite, WalMode::Sealed);
    clock.advance(Duration::months(3));
    db.pump_degradation().unwrap(); // full life cycle: expunge
    db.checkpoint().unwrap();
    // Hunt for every form along each degradation path, not just the leaves.
    let mut all_forms: Vec<String> = Vec::new();
    let gt = location_tree_fig1();
    for a in ADDRESSES {
        for (_, label) in gt.degradation_path(a).unwrap() {
            all_forms.push(label);
        }
    }
    let scanner = forensic_needles(all_forms.iter().map(|s| s.as_str()));
    let r = forensic_scan(&db, &scanner).unwrap();
    assert!(
        r.clean(),
        "no form of an expunged tuple may survive: {:?}",
        r.recovered
            .iter()
            .map(|v| String::from_utf8_lossy(v).to_string())
            .collect::<Vec<_>>()
    );
    assert_eq!(db.catalog().get("person").unwrap().live_count().unwrap(), 0);
}

#[test]
fn index_holds_no_finer_entries_than_the_store() {
    let (clock, db) = build(SecurePolicy::Overwrite, WalMode::Sealed);
    clock.advance(Duration::hours(2));
    db.pump_degradation().unwrap();
    let table = db.catalog().get("person").unwrap();
    // Level-0 index empty; all entries now at level 1 (cities).
    let occupancy = table
        .index_occupancy(instantdb::common::ColumnId(1))
        .unwrap();
    assert_eq!(occupancy[0], 0, "d0 index entries must be gone");
    assert_eq!(occupancy[1], ADDRESSES.len());
    // Probing the index with the old accurate keys yields nothing.
    for a in ADDRESSES {
        let hits = table
            .index_probe_deg(
                instantdb::common::ColumnId(1),
                LevelId(0),
                &Value::Str(a.into()),
            )
            .unwrap();
        assert!(hits.is_empty(), "{a} still indexed at d0");
    }
}

#[test]
fn vacuum_scrubs_naive_residue() {
    let (clock, db) = build(SecurePolicy::Naive, WalMode::Off);
    clock.advance(Duration::hours(2));
    db.pump_degradation().unwrap();
    let scanner = forensic_needles(FRAGMENTS.iter().copied());
    let before = forensic_scan(&db, &scanner).unwrap();
    assert!(!before.clean(), "naive heap keeps tails");
    db.vacuum().unwrap();
    let after = forensic_scan(&db, &scanner).unwrap();
    assert!(
        after.clean(),
        "vacuum must scrub residue: {:?}",
        after.recovered
    );
}
