//! End-to-end integration: full SQL sessions over the whole stack,
//! exercising the paper's Section II semantics across crate boundaries.

use std::sync::Arc;

use instantdb::prelude::*;

fn fig2_session() -> (MockClock, Session) {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    let mut s = Session::new(db);
    s.register_hierarchy("location_gt", Arc::new(location_tree_fig1()));
    s.register_hierarchy("salary_ranges", Arc::new(RangeHierarchy::salary()));
    s.execute(
        "CREATE TABLE person (\
           id INT INDEXED, \
           name TEXT, \
           location TEXT DEGRADE USING location_gt \
             LCP 'address:1h -> city:1d -> region:1mo -> country:1mo' INDEXED, \
           salary INT DEGRADE USING salary_ranges \
             LCP 'exact:1h -> range1000:1mo -> range10000:1mo')",
    )
    .unwrap();
    (clock, s)
}

fn seed(s: &mut Session) {
    for (id, name, loc, sal) in [
        (1, "alice", "4 rue Jussieu", 2340),
        (2, "bob", "Domaine de Voluceau", 2890),
        (3, "carol", "Drienerlolaan 5", 3500),
        (4, "dave", "Rue de la Paix", 1200),
        (5, "eve", "Science Park 123", 2750),
    ] {
        s.execute(&format!(
            "INSERT INTO person VALUES ({id}, '{name}', '{loc}', {sal})"
        ))
        .unwrap();
    }
}

/// The paper's full worked example: declare the STAT purpose, query with
/// unchanged SQL, observe country+range semantics.
#[test]
fn papers_worked_example() {
    let (clock, mut s) = fig2_session();
    seed(&mut s);
    // Let everything degrade to country/range10000-visible states? No —
    // query the *fresh* data at coarse declared accuracy (the model allows
    // that: fine states compute coarse levels).
    s.execute(
        "DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION, \
         RANGE1000 FOR P.SALARY",
    )
    .unwrap();
    let r = s
        .execute("SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%' AND SALARY = '2000-3000'")
        .unwrap()
        .rows();
    // France residents with salary in [2000,3000): alice (2340), bob (2890).
    assert_eq!(r.rows.len(), 2);
    for row in &r.rows {
        assert_eq!(row[2], Value::Str("France".into()));
        assert_eq!(row[3], Value::Range { lo: 2000, hi: 3000 });
    }
    // The same query after partial degradation returns the same answer —
    // coarse queries are stable across fine-grained aging (1 day in: city).
    clock.advance(Duration::hours(26));
    s.db().pump_degradation().unwrap();
    let r2 = s
        .execute("SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%' AND SALARY = '2000-3000'")
        .unwrap()
        .rows();
    assert_eq!(r2.rows.len(), 2, "coarse answers survive degradation");
}

#[test]
fn tuple_state_partitions_are_respected() {
    let (clock, mut s) = fig2_session();
    seed(&mut s);
    clock.advance(Duration::hours(2));
    s.db().pump_degradation().unwrap();
    // Insert two fresh tuples: store now holds two subsets ST_j.
    s.execute("INSERT INTO person VALUES (6, 'frank', '45 avenue des Etats-Unis', 2100)")
        .unwrap();
    s.execute("INSERT INTO person VALUES (7, 'grace', 'Hengelosestraat 99', 4100)")
        .unwrap();
    // At the accurate level only the fresh subset is visible.
    s.clear_purpose();
    let accurate = s.execute("SELECT id FROM person").unwrap().rows();
    assert_eq!(accurate.rows.len(), 2);
    // At city level, everything is visible and cities are exact.
    s.execute("DECLARE PURPOSE Q SET ACCURACY LEVEL CITY FOR LOCATION, RANGE1000 FOR SALARY")
        .unwrap();
    let city = s.execute("SELECT id, location FROM person").unwrap().rows();
    assert_eq!(city.rows.len(), 7);
    let versailles = city
        .rows
        .iter()
        .filter(|r| r[1] == Value::Str("Versailles".into()))
        .count();
    assert_eq!(
        versailles, 1,
        "fresh frank degrades to Versailles on the fly"
    );
}

#[test]
fn delete_semantics_match_views() {
    let (clock, mut s) = fig2_session();
    seed(&mut s);
    clock.advance(Duration::hours(2));
    s.db().pump_degradation().unwrap();
    // Delete at country accuracy: "deletion through SQL views".
    s.execute("DECLARE PURPOSE D SET ACCURACY LEVEL COUNTRY FOR LOCATION, d3 FOR SALARY")
        .unwrap();
    let out = s
        .execute("DELETE FROM person WHERE location = 'Netherlands'")
        .unwrap();
    assert_eq!(out, QueryOutput::Deleted(2)); // carol + eve
    let left = s.execute("SELECT id FROM person").unwrap().rows();
    assert_eq!(left.rows.len(), 3);
    // Deleted tuples are physically gone (stable attributes included).
    let table = s.db().catalog().get("person").unwrap();
    assert_eq!(table.live_count().unwrap(), 3);
}

#[test]
fn salary_only_queries_under_partial_degradation() {
    let (clock, mut s) = fig2_session();
    seed(&mut s);
    // Salary degrades to range1000 after 1 h; location to city after 1 h.
    clock.advance(Duration::hours(3));
    s.db().pump_degradation().unwrap();
    s.execute("DECLARE PURPOSE Q SET ACCURACY LEVEL CITY FOR LOCATION, RANGE1000 FOR SALARY")
        .unwrap();
    let r = s
        .execute("SELECT id, salary FROM person WHERE salary = '2000-3000'")
        .unwrap()
        .rows();
    // 2340, 2890, 2750 → three ids in the 2000-3000 band.
    assert_eq!(r.rows.len(), 3);
    for row in &r.rows {
        assert_eq!(row[1], Value::Range { lo: 2000, hi: 3000 });
    }
}

#[test]
fn index_and_scan_agree_at_every_level() {
    let (clock, mut s) = fig2_session();
    seed(&mut s);
    clock.advance(Duration::hours(2));
    s.db().pump_degradation().unwrap();
    s.execute("DECLARE PURPOSE Q SET ACCURACY LEVEL CITY FOR LOCATION, RANGE1000 FOR SALARY")
        .unwrap();
    // Indexed plan.
    let by_index = s
        .execute("SELECT id FROM person WHERE location = 'Paris'")
        .unwrap()
        .rows();
    assert!(by_index.plan.starts_with("DegIndexEq"));
    // Force a scan by predicating on the unindexed name column too.
    let by_scan = s
        .execute("SELECT id FROM person WHERE name LIKE '%' AND location = 'Paris'")
        .unwrap()
        .rows();
    let mut a = by_index.rows.clone();
    let mut b = by_scan.rows.clone();
    a.sort_by_key(|r| format!("{r:?}"));
    b.sort_by_key(|r| format!("{r:?}"));
    assert_eq!(a, b, "access path must not change the answer");
}

#[test]
fn full_life_cycle_empties_the_table() {
    let (clock, mut s) = fig2_session();
    seed(&mut s);
    clock.advance(Duration::months(3));
    let report = s.db().pump_degradation().unwrap();
    assert_eq!(report.expunged, 5);
    assert_eq!(
        s.db()
            .catalog()
            .get("person")
            .unwrap()
            .live_count()
            .unwrap(),
        0
    );
    // Every accuracy level now yields the empty answer.
    for purpose in [
        None,
        Some("DECLARE PURPOSE Q SET ACCURACY LEVEL COUNTRY FOR LOCATION, d3 FOR SALARY"),
    ] {
        if let Some(p) = purpose {
            s.execute(p).unwrap();
        }
        let r = s.execute("SELECT * FROM person").unwrap().rows();
        assert!(r.rows.is_empty());
    }
    assert_eq!(total_exposure(s.db()).unwrap(), 0.0);
}

#[test]
fn degradable_attributes_are_immutable_stable_ones_not() {
    let (_clock, mut s) = fig2_session();
    seed(&mut s);
    let db = s.db().clone();
    let table = db.catalog().get("person").unwrap();
    let (tid, _) = table.scan().unwrap()[0];
    // Stable update ok.
    db.update_stable(
        &table,
        tid,
        instantdb::common::ColumnId(1),
        Value::Str("zoe".into()),
    )
    .unwrap();
    // Degradable update refused.
    let err = db
        .update_stable(
            &table,
            tid,
            instantdb::common::ColumnId(2),
            Value::Str("Paris".into()),
        )
        .unwrap_err();
    assert!(matches!(err, Error::Policy(_)));
}

#[test]
fn relaxed_vs_strict_monotonicity() {
    // Relaxed answers are always a superset of strict answers.
    let (clock, mut s) = fig2_session();
    seed(&mut s);
    clock.advance(Duration::hours(2));
    s.db().pump_degradation().unwrap();
    s.execute("INSERT INTO person VALUES (9, 'hank', '4 rue Jussieu', 2000)")
        .unwrap();
    s.execute("DECLARE PURPOSE Q SET ACCURACY LEVEL CITY FOR LOCATION, RANGE1000 FOR SALARY")
        .unwrap();
    let strict = s.execute("SELECT id FROM person").unwrap().rows();
    s.set_semantics(QuerySemantics::Relaxed);
    let relaxed = s.execute("SELECT id FROM person").unwrap().rows();
    assert!(relaxed.rows.len() >= strict.rows.len());
    for row in &strict.rows {
        assert!(relaxed.rows.contains(row), "strict ⊆ relaxed violated");
    }
}

#[test]
fn exposure_report_over_session_lifetime() {
    let (clock, mut s) = fig2_session();
    seed(&mut s);
    let e0 = total_exposure(s.db()).unwrap();
    // Two degradable columns × 5 tuples, all accurate.
    assert!((e0 - 10.0).abs() < 1e-9);
    clock.advance(Duration::days(2));
    s.db().pump_degradation().unwrap();
    let e1 = total_exposure(s.db()).unwrap();
    assert!(e1 < e0);
    let reports = exposure_of_db(s.db()).unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].tuples, 5);
    assert_eq!(reports[0].accurate_values, 0);
}
