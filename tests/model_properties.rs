//! Property-based integration tests: the engine agrees with the abstract
//! LCP model under randomized policies, workloads and clock schedules.
//!
//! The key invariant (the paper's central promise): at any observation
//! instant, every stored degradable value equals exactly what the abstract
//! model (`Degrader::value_at`) predicts for the tuple's age — provided the
//! pump has run — and accuracy is monotone: replaying the same history
//! never yields a *finer* state than an earlier observation.

use std::sync::Arc;

use instantdb::prelude::*;
use proptest::prelude::*;

fn arb_lcp() -> impl Strategy<Value = AttributeLcp> {
    // Levels ⊆ {0,1,2,3} strictly increasing starting at 0, minutes-scale
    // retentions.
    (
        proptest::collection::vec(1u64..240, 1..4),
        proptest::sample::subsequence(vec![1u8, 2, 3], 0..3),
    )
        .prop_map(|(retentions, extra_levels)| {
            let mut levels = vec![0u8];
            levels.extend(extra_levels);
            let pairs: Vec<(u8, Duration)> = levels
                .iter()
                .zip(retentions.iter().cycle())
                .map(|(l, m)| (*l, Duration::minutes(*m)))
                .collect();
            AttributeLcp::from_pairs(&pairs).expect("valid policy")
        })
}

fn schema_with(lcp: AttributeLcp) -> TableSchema {
    let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
    TableSchema::new(
        "person",
        vec![
            Column::stable("id", DataType::Int),
            Column::degradable("location", DataType::Str, gt, lcp)
                .unwrap()
                .with_index(),
        ],
    )
    .unwrap()
}

const LEAVES: [&str; 4] = [
    "4 rue Jussieu",
    "Domaine de Voluceau",
    "Drienerlolaan 5",
    "Science Park 123",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Engine state == model prediction at random observation points.
    #[test]
    fn engine_matches_abstract_model(
        lcp in arb_lcp(),
        inserts in proptest::collection::vec((0usize..4, 0u64..120), 1..12),
        advances in proptest::collection::vec(1u64..200, 1..8),
    ) {
        let clock = MockClock::new();
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        db.create_table(schema_with(lcp.clone())).unwrap();
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        let degrader = Degrader::new(gt, lcp).unwrap();

        // Insert at staggered times.
        let mut expected: Vec<(Timestamp, Value)> = Vec::new();
        for (leaf_idx, delay_min) in &inserts {
            clock.advance(Duration::minutes(*delay_min));
            let leaf = Value::Str(LEAVES[*leaf_idx].into());
            db.insert("person", &[Value::Int(expected.len() as i64), leaf.clone()]).unwrap();
            expected.push((clock.now(), leaf));
        }

        // Random observation schedule.
        for adv in &advances {
            clock.advance(Duration::minutes(*adv));
            db.pump_degradation().unwrap();
            let table = db.catalog().get("person").unwrap();
            let now = clock.now();
            let live: std::collections::HashMap<i64, Value> = table
                .scan()
                .unwrap()
                .into_iter()
                .map(|(_, t)| (t.row[0].as_int().unwrap(), t.row[1].clone()))
                .collect();
            for (id, (birth, v0)) in expected.iter().enumerate() {
                let age = now.since(*birth);
                let predicted = degrader.value_at(v0, age).unwrap();
                match live.get(&(id as i64)) {
                    Some(stored) => prop_assert_eq!(
                        stored, &predicted,
                        "tuple {} at age {}", id, age
                    ),
                    None => prop_assert_eq!(
                        &predicted, &Value::Removed,
                        "tuple {} missing but model predicts {:?}", id, predicted
                    ),
                }
            }
        }
    }

    /// Exposure is monotonically non-increasing along any schedule with no
    /// new inserts.
    #[test]
    fn exposure_monotone_without_inserts(
        lcp in arb_lcp(),
        advances in proptest::collection::vec(1u64..300, 1..10),
    ) {
        let clock = MockClock::new();
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        db.create_table(schema_with(lcp)).unwrap();
        for (i, leaf) in LEAVES.iter().enumerate() {
            db.insert("person", &[Value::Int(i as i64), Value::Str((*leaf).into())]).unwrap();
        }
        let mut prev = total_exposure(&db).unwrap();
        for adv in &advances {
            clock.advance(Duration::minutes(*adv));
            db.pump_degradation().unwrap();
            let e = total_exposure(&db).unwrap();
            prop_assert!(e <= prev + 1e-9, "exposure rose {prev} -> {e}");
            prev = e;
        }
    }

    /// Index occupancy always sums to the number of live degradable values,
    /// regardless of schedule.
    #[test]
    fn index_occupancy_consistent(
        lcp in arb_lcp(),
        advances in proptest::collection::vec(1u64..200, 1..8),
    ) {
        let clock = MockClock::new();
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        db.create_table(schema_with(lcp)).unwrap();
        for (i, leaf) in LEAVES.iter().enumerate() {
            db.insert("person", &[Value::Int(i as i64), Value::Str((*leaf).into())]).unwrap();
        }
        let table = db.catalog().get("person").unwrap();
        for adv in &advances {
            clock.advance(Duration::minutes(*adv));
            db.pump_degradation().unwrap();
            let occupancy = table.index_occupancy(instantdb::common::ColumnId(1)).unwrap();
            let indexed: usize = occupancy.iter().sum();
            let live_values = table
                .scan()
                .unwrap()
                .iter()
                .filter(|(_, t)| t.stages[0].is_some())
                .count();
            prop_assert_eq!(indexed, live_values);
        }
    }

    /// Strict-σ result rows always show values at exactly the requested
    /// level, for random purposes over random data ages.
    #[test]
    fn sigma_returns_uniform_accuracy(
        level in 0u8..4,
        age_minutes in 0u64..4000,
    ) {
        let clock = MockClock::new();
        let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
        let mut session = Session::new(db.clone());
        session.register_hierarchy("geo", Arc::new(location_tree_fig1()));
        session.execute(
            "CREATE TABLE person (id INT, location TEXT DEGRADE USING geo \
             LCP 'd0:30min -> d1:2h -> d2:8h -> d3:24h' INDEXED)",
        ).unwrap();
        for (i, leaf) in LEAVES.iter().enumerate() {
            session.execute(&format!("INSERT INTO person VALUES ({i}, '{leaf}')")).unwrap();
        }
        clock.advance(Duration::minutes(age_minutes));
        db.pump_degradation().unwrap();
        session.execute(&format!(
            "DECLARE PURPOSE P SET ACCURACY LEVEL d{level} FOR LOCATION"
        )).unwrap();
        let rows = session.execute("SELECT location FROM person").unwrap().rows();
        let gt = location_tree_fig1();
        for row in &rows.rows {
            let lv = gt.level_of(&row[0]);
            prop_assert_eq!(
                lv, Some(LevelId(level)),
                "returned {:?} is not at level d{}", row[0], level
            );
        }
    }
}
