//! Crash-recovery integration tests (experiment E11's correctness half).
//!
//! The invariants under test:
//!
//! 1. committed work survives a crash;
//! 2. a crash can never make a tuple *regain* accuracy (no resurrection of
//!    degraded states) — the property the whole degradation-aware WAL
//!    design exists to guarantee;
//! 3. recovery is idempotent (recovering twice = once);
//! 4. key shredding makes pre-checkpoint images unrecoverable even when
//!    the log file itself is retained.

use std::path::PathBuf;
use std::sync::Arc;

use instantdb::prelude::*;

fn schema() -> TableSchema {
    let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
    TableSchema::new(
        "person",
        vec![
            Column::stable("id", DataType::Int).with_index(),
            Column::degradable("location", DataType::Str, gt, AttributeLcp::fig2_location())
                .unwrap()
                .with_index(),
        ],
    )
    .unwrap()
}

struct TempDbPath(PathBuf);

impl TempDbPath {
    fn new(tag: &str) -> TempDbPath {
        let p = std::env::temp_dir().join(format!(
            "instantdb-it-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let t = TempDbPath(p);
        t.cleanup();
        t
    }
    fn cleanup(&self) {
        for ext in ["idb", "wal", "meta"] {
            let mut s = self.0.as_os_str().to_os_string();
            s.push(".");
            s.push(ext);
            let p = PathBuf::from(s);
            let _ = std::fs::remove_file(&p);
            let _ = std::fs::remove_dir_all(&p); // the WAL is a segment dir
        }
    }
}

impl Drop for TempDbPath {
    fn drop(&mut self) {
        self.cleanup();
    }
}

fn cfg(path: &TempDbPath) -> DbConfig {
    DbConfig {
        path: Some(path.0.clone()),
        ..DbConfig::default()
    }
}

fn row(id: i64, addr: &str) -> Vec<Value> {
    vec![Value::Int(id), Value::Str(addr.into())]
}

#[test]
fn committed_inserts_survive_crash_without_checkpoint() {
    let path = TempDbPath::new("nockpt");
    let clock = MockClock::new();
    {
        let db = Db::open(cfg(&path), clock.shared()).unwrap();
        db.create_table(schema()).unwrap();
        for i in 0..20 {
            db.insert("person", &row(i, "4 rue Jussieu")).unwrap();
        }
        drop(db); // crash: no checkpoint, dirty pages lost
    }
    let db = Db::recover_with_schemas(cfg(&path), clock.shared(), vec![schema()]).unwrap();
    let table = db.catalog().get("person").unwrap();
    assert_eq!(table.live_count().unwrap(), 20);
    // Indexes rebuilt consistently.
    assert_eq!(
        table
            .index_probe_stable(instantdb::common::ColumnId(0), &Value::Int(7))
            .unwrap()
            .len(),
        1
    );
    // Scheduler re-armed for all 20 tuples.
    assert_eq!(db.scheduler().len(), 20);
}

#[test]
fn degraded_state_never_resurrects() {
    let path = TempDbPath::new("nores");
    let clock = MockClock::new();
    {
        let db = Db::open(cfg(&path), clock.shared()).unwrap();
        db.create_table(schema()).unwrap();
        for i in 0..10 {
            db.insert("person", &row(i, "Drienerlolaan 5")).unwrap();
        }
        clock.advance(Duration::hours(2));
        db.pump_degradation().unwrap(); // all at city
        clock.advance(Duration::days(2));
        db.pump_degradation().unwrap(); // all at region
        drop(db); // crash
    }
    let db = Db::recover_with_schemas(cfg(&path), clock.shared(), vec![schema()]).unwrap();
    let table = db.catalog().get("person").unwrap();
    let tuples = table.scan().unwrap();
    assert_eq!(tuples.len(), 10);
    for (_, t) in &tuples {
        assert_eq!(
            t.row[1],
            Value::Str("Overijssel".into()),
            "recovery must land at the latest degraded state"
        );
        assert_eq!(t.stages[0], Some(2));
    }
}

#[test]
fn crash_between_degradation_steps_is_consistent() {
    let path = TempDbPath::new("midstep");
    let clock = MockClock::new();
    {
        let db = Db::open(cfg(&path), clock.shared()).unwrap();
        db.create_table(schema()).unwrap();
        // Stagger inserts so only some tuples have degraded at crash time.
        for i in 0..5 {
            db.insert("person", &row(i, "4 rue Jussieu")).unwrap();
        }
        clock.advance(Duration::minutes(50));
        for i in 5..10 {
            db.insert("person", &row(i, "4 rue Jussieu")).unwrap();
        }
        clock.advance(Duration::minutes(20)); // first batch past 1 h, second not
        db.pump_degradation().unwrap();
        drop(db);
    }
    let db = Db::recover_with_schemas(cfg(&path), clock.shared(), vec![schema()]).unwrap();
    let table = db.catalog().get("person").unwrap();
    let mut cities = 0;
    let mut addresses = 0;
    for (_, t) in table.scan().unwrap() {
        match &t.row[1] {
            Value::Str(s) if s == "Paris" => cities += 1,
            Value::Str(s) if s == "4 rue Jussieu" => addresses += 1,
            other => panic!("unexpected location {other:?}"),
        }
    }
    assert_eq!((cities, addresses), (5, 5));
    // Pumping after recovery finishes the stragglers on schedule.
    clock.advance(Duration::hours(1));
    db.pump_degradation().unwrap();
    for (_, t) in table.scan().unwrap() {
        assert_eq!(t.row[1], Value::Str("Paris".into()));
    }
}

#[test]
fn recovery_is_idempotent() {
    let path = TempDbPath::new("idem");
    let clock = MockClock::new();
    {
        let db = Db::open(cfg(&path), clock.shared()).unwrap();
        db.create_table(schema()).unwrap();
        db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        db.checkpoint().unwrap();
        db.insert("person", &row(2, "Rue de la Paix")).unwrap();
        drop(db);
    }
    // Recover once, crash immediately (no new work), recover again.
    {
        let db = Db::recover_with_schemas(cfg(&path), clock.shared(), vec![schema()]).unwrap();
        assert_eq!(db.catalog().get("person").unwrap().live_count().unwrap(), 2);
        drop(db);
    }
    let db = Db::recover_with_schemas(cfg(&path), clock.shared(), vec![schema()]).unwrap();
    assert_eq!(
        db.catalog().get("person").unwrap().live_count().unwrap(),
        2,
        "double recovery must not duplicate tuples"
    );
}

#[test]
fn user_delete_survives_crash() {
    let path = TempDbPath::new("del");
    let clock = MockClock::new();
    {
        let db = Db::open(cfg(&path), clock.shared()).unwrap();
        db.create_table(schema()).unwrap();
        let t1 = db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        db.insert("person", &row(2, "Rue de la Paix")).unwrap();
        let table = db.catalog().get("person").unwrap();
        db.delete_tuple(&table, t1).unwrap();
        drop(db);
    }
    let db = Db::recover_with_schemas(cfg(&path), clock.shared(), vec![schema()]).unwrap();
    let table = db.catalog().get("person").unwrap();
    let tuples = table.scan().unwrap();
    assert_eq!(tuples.len(), 1);
    assert_eq!(tuples[0].1.row[0], Value::Int(2));
}

#[test]
fn shredded_log_images_stay_dead_across_restart() {
    let path = TempDbPath::new("shred");
    let clock = MockClock::new();
    {
        let db = Db::open(cfg(&path), clock.shared()).unwrap();
        db.create_table(schema()).unwrap();
        db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        clock.advance(Duration::hours(2));
        db.pump_degradation().unwrap();
        db.checkpoint().unwrap(); // shreds the insert's window
        drop(db);
    }
    let db = Db::recover_with_schemas(cfg(&path), clock.shared(), vec![schema()]).unwrap();
    // The shredded set survived the restart.
    assert!(db.keystore().shredded_count() >= 1);
    // And the recovered state is the degraded one.
    let table = db.catalog().get("person").unwrap();
    let (_, t) = &table.scan().unwrap()[0];
    assert_eq!(t.row[1], Value::Str("Paris".into()));
}

#[test]
fn expunge_survives_crash() {
    let path = TempDbPath::new("expunge");
    let clock = MockClock::new();
    {
        let db = Db::open(cfg(&path), clock.shared()).unwrap();
        db.create_table(schema()).unwrap();
        db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        db.insert("person", &row(2, "Science Park 123")).unwrap();
        db.checkpoint().unwrap();
        // Full life cycle for both tuples.
        clock.advance(Duration::months(3));
        let r = db.pump_degradation().unwrap();
        assert_eq!(r.expunged, 2);
        drop(db);
    }
    let db = Db::recover_with_schemas(cfg(&path), clock.shared(), vec![schema()]).unwrap();
    assert_eq!(
        db.catalog().get("person").unwrap().live_count().unwrap(),
        0,
        "expunged tuples must not come back"
    );
    assert!(db.scheduler().is_empty());
}
