//! SQL surface integration tests: the full front end (DDL, DML, purposes)
//! behaves like a database, including its error paths.

use std::sync::Arc;

use instantdb::prelude::*;

fn fresh() -> (MockClock, Session) {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    let mut s = Session::new(db);
    s.register_hierarchy("geo", Arc::new(location_tree_fig1()));
    s.register_hierarchy("money", Arc::new(RangeHierarchy::salary()));
    (clock, s)
}

#[test]
fn create_table_via_sql_with_named_levels() {
    let (_c, mut s) = fresh();
    let out = s
        .execute(
            "CREATE TABLE t (id INT INDEXED, \
             loc TEXT DEGRADE USING geo LCP 'address:30min -> city:1d' INDEXED, \
             pay INT DEGRADE USING money LCP 'exact:10min -> range1000:30d')",
        )
        .unwrap();
    assert!(matches!(out, QueryOutput::TableCreated(n) if n == "t"));
    // Duplicate creation fails.
    assert!(s.execute("CREATE TABLE t (x INT)").is_err());
    // Unknown hierarchy fails.
    assert!(s
        .execute("CREATE TABLE u (x TEXT DEGRADE USING nope LCP 'd0:1h')")
        .is_err());
    // Bad LCP spec fails.
    assert!(s
        .execute("CREATE TABLE v (x TEXT DEGRADE USING geo LCP 'gibberish')")
        .is_err());
}

#[test]
fn multi_row_insert_and_count() {
    let (_c, mut s) = fresh();
    s.execute("CREATE TABLE t (id INT INDEXED, name TEXT)")
        .unwrap();
    let out = s
        .execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    assert_eq!(out, QueryOutput::Inserted(3));
    let r = s.execute("SELECT * FROM t").unwrap().rows();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.columns, vec!["id".to_string(), "name".to_string()]);
}

#[test]
fn type_mismatch_on_insert() {
    let (_c, mut s) = fresh();
    s.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
    assert!(matches!(
        s.execute("INSERT INTO t VALUES ('one', 'a')"),
        Err(Error::Schema(_))
    ));
    assert!(matches!(
        s.execute("INSERT INTO t VALUES (1)"),
        Err(Error::Schema(_))
    ));
}

#[test]
fn comparison_operator_matrix() {
    let (_c, mut s) = fresh();
    s.execute("CREATE TABLE t (id INT INDEXED, v INT)").unwrap();
    for i in 0..10 {
        s.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 10))
            .unwrap();
    }
    let count = |s: &mut Session, q: &str| s.execute(q).unwrap().rows().rows.len();
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE v = 50"), 1);
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE v <> 50"), 9);
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE v < 50"), 5);
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE v <= 50"), 6);
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE v > 50"), 4);
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE v >= 50"), 5);
    assert_eq!(
        count(&mut s, "SELECT * FROM t WHERE v BETWEEN 20 AND 40"),
        3
    );
    assert_eq!(
        count(
            &mut s,
            "SELECT * FROM t WHERE v >= 20 AND v < 40 AND id > 1"
        ),
        2
    );
}

#[test]
fn index_plans_on_stable_ranges() {
    let (_c, mut s) = fresh();
    s.execute("CREATE TABLE t (id INT INDEXED, v INT)").unwrap();
    for i in 0..100 {
        s.execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    let r = s
        .execute("SELECT id FROM t WHERE id BETWEEN 10 AND 19")
        .unwrap()
        .rows();
    assert!(r.plan.starts_with("IndexRange"), "plan: {}", r.plan);
    assert_eq!(r.rows.len(), 10);
    let r2 = s.execute("SELECT id FROM t WHERE id >= 95").unwrap().rows();
    assert!(r2.plan.starts_with("IndexRange"));
    assert_eq!(r2.rows.len(), 5);
    let r3 = s.execute("SELECT id FROM t WHERE id < 5").unwrap().rows();
    assert_eq!(r3.rows.len(), 5);
}

#[test]
fn delete_without_predicate_empties_table() {
    let (_c, mut s) = fresh();
    s.execute("CREATE TABLE t (id INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let out = s.execute("DELETE FROM t").unwrap();
    assert_eq!(out, QueryOutput::Deleted(3));
    assert!(s.execute("SELECT * FROM t").unwrap().rows().rows.is_empty());
}

#[test]
fn purposes_are_session_state() {
    let (clock, mut s) = fresh();
    s.execute(
        "CREATE TABLE t (id INT, loc TEXT DEGRADE USING geo \
         LCP 'address:1h -> city:1d -> region:1mo -> country:1mo' INDEXED)",
    )
    .unwrap();
    s.execute("INSERT INTO t VALUES (1, '4 rue Jussieu')")
        .unwrap();
    clock.advance(Duration::hours(2));
    s.db().pump_degradation().unwrap();

    // Declare two purposes; the later one is active.
    s.execute("DECLARE PURPOSE FINE SET ACCURACY LEVEL CITY FOR LOC")
        .unwrap();
    s.execute("DECLARE PURPOSE COARSE SET ACCURACY LEVEL COUNTRY FOR LOC")
        .unwrap();
    let r = s.execute("SELECT loc FROM t").unwrap().rows();
    assert_eq!(r.rows[0][0], Value::Str("France".into()));
    // Re-activate the finer one by name.
    s.set_purpose("fine").unwrap();
    let r2 = s.execute("SELECT loc FROM t").unwrap().rows();
    assert_eq!(r2.rows[0][0], Value::Str("Paris".into()));
    // Clearing returns to most-accurate semantics: nothing computable.
    s.clear_purpose();
    assert!(s
        .execute("SELECT loc FROM t")
        .unwrap()
        .rows()
        .rows
        .is_empty());
}

#[test]
fn range_literal_binding_on_int_columns() {
    let (clock, mut s) = fresh();
    s.execute(
        "CREATE TABLE t (id INT, pay INT DEGRADE USING money \
         LCP 'exact:1h -> range1000:30d')",
    )
    .unwrap();
    for (i, p) in [(1, 1500), (2, 2500), (3, 3500)] {
        s.execute(&format!("INSERT INTO t VALUES ({i}, {p})"))
            .unwrap();
    }
    clock.advance(Duration::hours(2));
    s.db().pump_degradation().unwrap();
    s.execute("DECLARE PURPOSE P SET ACCURACY LEVEL RANGE1000 FOR PAY")
        .unwrap();
    // The paper's quoted interval literal.
    let r = s
        .execute("SELECT id FROM t WHERE pay = '2000-3000'")
        .unwrap()
        .rows();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    // And an int literal matches by containment on the degraded range.
    let r2 = s
        .execute("SELECT id FROM t WHERE pay = 3700")
        .unwrap()
        .rows();
    assert_eq!(r2.rows, vec![vec![Value::Int(3)]]);
}

#[test]
fn projection_of_unknown_column_fails_cleanly() {
    let (_c, mut s) = fresh();
    s.execute("CREATE TABLE t (id INT)").unwrap();
    assert!(matches!(
        s.execute("SELECT ghost FROM t"),
        Err(Error::NotFound(_))
    ));
    assert!(matches!(
        s.execute("SELECT id FROM t WHERE ghost = 1"),
        Err(Error::NotFound(_))
    ));
}

#[test]
fn parser_rejects_garbage_without_side_effects() {
    let (_c, mut s) = fresh();
    s.execute("CREATE TABLE t (id INT)").unwrap();
    for bad in [
        "SELEKT * FROM t",
        "SELECT * FROM",
        "INSERT t VALUES (1)",
        "DELETE t",
        "DECLARE PURPOSE",
        "",
        ";;;",
    ] {
        assert!(s.execute(bad).is_err(), "{bad:?} should fail");
    }
    // The table is untouched.
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(s.execute("SELECT * FROM t").unwrap().rows().rows.len(), 1);
}

#[test]
fn like_patterns_edgecases() {
    let (_c, mut s) = fresh();
    s.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
    s.execute("INSERT INTO t VALUES (1, 'Alice Wonderland'), (2, 'Bob'), (3, '')")
        .unwrap();
    let count = |s: &mut Session, q: &str| s.execute(q).unwrap().rows().rows.len();
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE name LIKE '%'"), 3);
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE name LIKE 'alice%'"), 1);
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE name LIKE '%LAND'"), 1);
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE name LIKE 'BOB'"), 1);
    assert_eq!(count(&mut s, "SELECT * FROM t WHERE name LIKE '%x%'"), 0);
}

#[test]
fn checkpoint_statement_truncates_log_via_sql() {
    // Served deployments reach Db::checkpoint only through SQL, so the
    // statement must do the whole flush → log → shred → truncate cycle.
    let (_c, mut s) = fresh();
    s.execute("CREATE TABLE t (id INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let out = s.execute("CHECKPOINT").unwrap();
    assert!(matches!(out, QueryOutput::Checkpointed));
    let db = s.db().clone();
    let records = db.wal().unwrap().iterate().unwrap();
    assert_eq!(records.len(), 1, "only the checkpoint record remains");
    let stats = wal_stats(&db);
    assert_eq!(stats.checkpoints, 1);
    assert!(stats.truncated_bytes > 0);
    // And the statement parses with a trailing semicolon too.
    assert!(matches!(
        s.execute("CHECKPOINT;").unwrap(),
        QueryOutput::Checkpointed
    ));
}
