//! Smoke test: every example in `examples/` must build and run to
//! completion. Examples are the documented entry points to the engine;
//! a PR that silently breaks one should fail `cargo test`, not wait for
//! a human to try the README commands.
//!
//! The four examples run in well under a minute each even unoptimized;
//! they use `MockClock`, so no wall-clock time is spent waiting for
//! degradation delays.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "location_tracking",
    "forensic_audit",
    "retention_vs_degradation",
];

/// One test (not one per example) so concurrent `cargo run` invocations
/// never contend on the target-directory build lock.
#[test]
fn examples_build_and_run() {
    let cargo = env!("CARGO");
    for example in EXAMPLES {
        let output = Command::new(cargo)
            .args(["run", "--offline", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} produced no output"
        );
    }
}
