//! Group-commit pipeline + background checkpointer integration tests.
//!
//! The contracts under test, end to end through the engine:
//!
//! 1. N concurrent committers produce measurably fewer fsyncs than
//!    commits (the tentpole claim), and every acknowledged commit
//!    survives a crash;
//! 2. a tear mid-way through an unsynced group batch loses no
//!    acknowledged commit and resurrects no torn one;
//! 3. a full recovery round-trip through a background checkpoint +
//!    physical truncation lands on exactly the committed state.

use std::path::PathBuf;
use std::sync::Arc;

use instantdb::prelude::*;

fn schema() -> TableSchema {
    let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
    TableSchema::new(
        "person",
        vec![
            Column::stable("id", DataType::Int).with_index(),
            Column::degradable("location", DataType::Str, gt, AttributeLcp::fig2_location())
                .unwrap()
                .with_index(),
        ],
    )
    .unwrap()
}

struct TempDbPath(PathBuf);

impl TempDbPath {
    fn new(tag: &str) -> TempDbPath {
        let p = std::env::temp_dir().join(format!(
            "instantdb-gc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let t = TempDbPath(p);
        t.cleanup();
        t
    }
    fn cleanup(&self) {
        for ext in ["idb", "wal", "meta"] {
            let mut s = self.0.as_os_str().to_os_string();
            s.push(".");
            s.push(ext);
            let p = PathBuf::from(s);
            let _ = std::fs::remove_file(&p);
            let _ = std::fs::remove_dir_all(&p); // the WAL is a segment dir
        }
    }
}

impl Drop for TempDbPath {
    fn drop(&mut self) {
        self.cleanup();
    }
}

fn row(id: i64, addr: &str) -> Vec<Value> {
    vec![Value::Int(id), Value::Str(addr.into())]
}

#[test]
fn concurrent_committers_share_fsyncs_and_all_survive_crash() {
    const THREADS: i64 = 8;
    const PER_THREAD: i64 = 25;
    let path = TempDbPath::new("stress");
    let clock = MockClock::new();
    let cfg = DbConfig {
        path: Some(path.0.clone()),
        group_commit: Some(GroupCommitConfig {
            max_batch: 64,
            max_delay: std::time::Duration::from_micros(200),
        }),
        ..DbConfig::default()
    };
    {
        let db = Arc::new(Db::open(cfg.clone(), clock.shared()).unwrap());
        db.create_table(schema()).unwrap();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        db.insert("person", &row(t * PER_THREAD + i, "4 rue Jussieu"))
                            .unwrap();
                    }
                });
            }
        });
        let stats = wal_stats(&db);
        assert_eq!(stats.group_commits, (THREADS * PER_THREAD) as u64);
        assert!(
            stats.group_batches < stats.group_commits,
            "concurrent committers must share fsyncs: {stats:?}"
        );
        assert_eq!(
            stats.fsyncs, stats.group_batches,
            "one fsync per drain, none elsewhere: {stats:?}"
        );
        assert!(stats.fsyncs_saved() > 0);
        drop(db); // crash: no checkpoint, dirty pages lost
    }
    let db = Db::recover_with_schemas(cfg, clock.shared(), vec![schema()]).unwrap();
    assert_eq!(
        db.catalog().get("person").unwrap().live_count().unwrap(),
        (THREADS * PER_THREAD) as usize,
        "every acknowledged commit must replay"
    );
}

#[test]
fn tear_mid_group_batch_loses_no_acknowledged_commit() {
    let path = TempDbPath::new("tear");
    let clock = MockClock::new();
    let cfg = DbConfig {
        path: Some(path.0.clone()),
        ..DbConfig::default()
    };
    {
        let db = Db::open(cfg.clone(), clock.shared()).unwrap();
        db.create_table(schema()).unwrap();
        for i in 0..10 {
            db.insert("person", &row(i, "4 rue Jussieu")).unwrap();
        }
        // A phantom group batch the crash interrupts before its fsync:
        // its records reach the file, its fsync never happens, and no
        // ticket for it was ever acknowledged. The tear targets exactly
        // the shard the engine routes this transaction to — the other
        // shards keep their acknowledged bytes intact, which is the
        // realistic crash shape for a sharded log.
        let wal = db.wal().unwrap();
        wal.torn_tail(0).unwrap(); // flush acknowledged bytes, all shards
        let at = db.now();
        let tx = instantdb::common::TxId(u64::MAX);
        let shard = wal.shard(wal.shard_for(Some(tx)));
        let synced = instantdb::wal::writer::log_size(shard).unwrap();
        wal.append(&instantdb::wal::LogRecord::Begin { tx, at })
            .unwrap();
        wal.append(&instantdb::wal::LogRecord::Delete {
            tx,
            table: db.catalog().get("person").unwrap().id(),
            tid: instantdb::common::TupleId::new(1, 0),
            at,
        })
        .unwrap();
        wal.append(&instantdb::wal::LogRecord::Commit { tx, at })
            .unwrap();
        shard.torn_tail(0).unwrap(); // flush the phantom, still no fsync
        let full = instantdb::wal::writer::log_size(shard).unwrap();
        // Crash tears mid-way through the phantom batch on its shard.
        shard.torn_tail((full - synced) / 2).unwrap();
        drop(db);
    }
    let db = Db::recover_with_schemas(cfg, clock.shared(), vec![schema()]).unwrap();
    assert_eq!(
        db.catalog().get("person").unwrap().live_count().unwrap(),
        10,
        "all ten acknowledged inserts live; the torn delete never ran"
    );
}

#[test]
fn recovery_keeps_identical_twin_inserts_distinct() {
    // Two concurrently-acknowledged inserts can carry byte-identical
    // stored images at the same timestamp, with log order opposite the
    // tid-allocation order. Replay of the first lands on some physical
    // tid; if the second's *logged* tid is that same slot, its replay
    // must not be swallowed as "already flushed" — both acknowledged
    // rows have to survive.
    let clock = MockClock::new();
    // Probe: the physical tid a fresh table hands its first insert —
    // the slot the first replayed record will land on.
    let first_tid = {
        let db = Db::open(
            DbConfig {
                wal_mode: WalMode::Plain,
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap();
        db.create_table(schema()).unwrap();
        db.insert("person", &row(7, "4 rue Jussieu")).unwrap()
    };
    let path = TempDbPath::new("twins");
    let cfg = DbConfig {
        path: Some(path.0.clone()),
        wal_mode: WalMode::Plain,
        ..DbConfig::default()
    };
    {
        use instantdb::common::{Timestamp, TupleId, TxId};
        use instantdb::core::tuple::encode_stored_raw;
        use instantdb::wal::{LogRecord, Payload, Wal};
        let mut s = path.0.as_os_str().to_os_string();
        s.push(".wal");
        let wal = Wal::open(PathBuf::from(s)).unwrap();
        let image = encode_stored_raw(Timestamp::ZERO, &[Some(0)], &row(7, "4 rue Jussieu"));
        let batch = |tx: u64, tid: TupleId| {
            vec![
                LogRecord::Begin {
                    tx: TxId(tx),
                    at: Timestamp::ZERO,
                },
                LogRecord::Insert {
                    tx: TxId(tx),
                    table: instantdb::common::TableId(1),
                    tid,
                    row: Payload::Plain(image.clone()),
                    at: Timestamp::ZERO,
                },
                LogRecord::Commit {
                    tx: TxId(tx),
                    at: Timestamp::ZERO,
                },
            ]
        };
        // Tx 1's logged tid is elsewhere; its replay will land on
        // `first_tid`. Tx 2's logged tid IS `first_tid`.
        wal.append_batch(&batch(1, TupleId::new(9999, 99))).unwrap();
        wal.append_batch(&batch(2, first_tid)).unwrap();
        wal.sync().unwrap();
    }
    let db = Db::recover_with_schemas(cfg, clock.shared(), vec![schema()]).unwrap();
    assert_eq!(
        db.catalog().get("person").unwrap().live_count().unwrap(),
        2,
        "both acknowledged twins must survive recovery"
    );
}

#[test]
fn recovery_round_trip_through_background_checkpoint_and_truncate() {
    let path = TempDbPath::new("ckpt");
    let clock = MockClock::new();
    let cfg = DbConfig {
        path: Some(path.0.clone()),
        ..DbConfig::default()
    };
    {
        let db = Arc::new(Db::open(cfg.clone(), clock.shared()).unwrap());
        db.create_table(schema()).unwrap();
        for i in 0..10 {
            db.insert("person", &row(i, "4 rue Jussieu")).unwrap();
        }
        // Background checkpoint: flush → Checkpoint record through the
        // pipeline → physical truncation of the dead prefix.
        let ckpt = Checkpointer::spawn(db.clone(), std::time::Duration::from_millis(1)).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db.wal().unwrap().base_lsn() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let report = ckpt.stop().unwrap();
        assert!(report.checkpoints >= 1, "{report:?}");
        assert!(db.wal().unwrap().base_lsn() > 0, "prefix truncated");
        // Post-checkpoint work rides the log suffix only.
        for i in 10..20 {
            db.insert("person", &row(i, "Rue de la Paix")).unwrap();
        }
        drop(db); // crash
    }
    let db = Db::recover_with_schemas(cfg, clock.shared(), vec![schema()]).unwrap();
    let table = db.catalog().get("person").unwrap();
    assert_eq!(
        table.live_count().unwrap(),
        20,
        "checkpointed state + replayed suffix together restore all rows"
    );
    // Both halves really present (one from pages+meta, one from the log).
    for id in [0i64, 19] {
        assert_eq!(
            table
                .index_probe_stable(instantdb::common::ColumnId(0), &Value::Int(id))
                .unwrap()
                .len(),
            1,
            "row {id} missing after recovery"
        );
    }
    assert_eq!(db.scheduler().len(), 20, "transitions re-armed for all");
}
