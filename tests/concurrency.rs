//! Concurrency integration: readers, writers and the degrader running
//! together — the paper's "potential conflicts between degradation steps
//! and reader transactions".

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use instantdb::prelude::*;

fn setup() -> (MockClock, Arc<Db>) {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
    db.create_table(
        TableSchema::new(
            "person",
            vec![
                Column::stable("id", DataType::Int).with_index(),
                Column::degradable("location", DataType::Str, gt, AttributeLcp::fig2_location())
                    .unwrap()
                    .with_index(),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    (clock, db)
}

#[test]
fn concurrent_inserts_from_many_threads() {
    let (_clock, db) = setup();
    let threads = 8;
    let per_thread = 50;
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let id = (t * per_thread + i) as i64;
                db.insert(
                    "person",
                    &[Value::Int(id), Value::Str("4 rue Jussieu".into())],
                )
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let table = db.catalog().get("person").unwrap();
    assert_eq!(table.live_count().unwrap(), threads * per_thread);
    // Every id indexed exactly once.
    for id in 0..(threads * per_thread) as i64 {
        assert_eq!(
            table
                .index_probe_stable(instantdb::common::ColumnId(0), &Value::Int(id))
                .unwrap()
                .len(),
            1,
            "id {id}"
        );
    }
}

#[test]
fn degrader_races_readers_without_corruption() {
    let (clock, db) = setup();
    for i in 0..200 {
        db.insert(
            "person",
            &[Value::Int(i), Value::Str("Drienerlolaan 5".into())],
        )
        .unwrap();
    }
    clock.advance(Duration::hours(2));

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let db = db.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let table = db.catalog().get("person").unwrap();
            let mut reads = 0usize;
            while !stop.load(Ordering::Relaxed) {
                for (tid, _) in table.scan().unwrap() {
                    // Tuple reads go through the lock manager; a read must
                    // always observe a *coherent* value: either the address
                    // or the city, never torn bytes.
                    if let Ok(t) = db.read_tuple(&table, tid) {
                        match &t.row[1] {
                            Value::Str(s) => assert!(
                                s == "Drienerlolaan 5" || s == "Enschede",
                                "torn value: {s}"
                            ),
                            other => panic!("unexpected {other:?}"),
                        }
                        reads += 1;
                    }
                }
            }
            reads
        }));
    }

    // Degrade everything while the readers hammer the table.
    let mut total = PumpReport::default();
    for _ in 0..200 {
        let r = db.pump_one_batch().unwrap();
        total.fired += r.fired;
        total.deferred += r.deferred;
        // Probe with the non-destructive peek: `due_batch` *pops*, so
        // using it here would silently discard a reader-deferred
        // transition that was just re-queued and lose it forever.
        let queue_idle = !matches!(db.scheduler().next_due(), Some(d) if d <= db.now());
        if queue_idle && r.fired == 0 && r.deferred == 0 {
            break;
        }
        std::thread::yield_now();
    }
    // Drain anything still deferred after the readers stop.
    stop.store(true, Ordering::Relaxed);
    let read_counts: Vec<usize> = readers.into_iter().map(|h| h.join().unwrap()).collect();
    let tail = db.pump_degradation().unwrap();
    total.fired += tail.fired;

    assert_eq!(total.fired, 200, "every transition eventually fires");
    assert!(
        read_counts.iter().sum::<usize>() > 0,
        "readers made progress"
    );
    let table = db.catalog().get("person").unwrap();
    for (_, t) in table.scan().unwrap() {
        assert_eq!(t.row[1], Value::Str("Enschede".into()));
    }
}

#[test]
fn wait_die_aborts_are_retryable_under_load() {
    let (_clock, db) = setup();
    let tid = db
        .insert(
            "person",
            &[Value::Int(1), Value::Str("4 rue Jussieu".into())],
        )
        .unwrap();
    let table = db.catalog().get("person").unwrap();
    let threads = 6;
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = db.clone();
        let table = table.clone();
        handles.push(std::thread::spawn(move || {
            // Everyone updates the same stable column; retries must make
            // global progress despite wait-die casualties.
            for i in 0..20 {
                loop {
                    match db.update_stable(
                        &table,
                        tid,
                        instantdb::common::ColumnId(0),
                        Value::Int((t * 100 + i) as i64),
                    ) {
                        Ok(()) => break,
                        Err(e) if e.is_retryable() => std::thread::yield_now(),
                        Err(e) => panic!("unexpected error {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // The tuple holds one of the written values, intact.
    let t = table.get(tid).unwrap();
    assert!(matches!(t.row[0], Value::Int(_)));
}

#[test]
fn inserts_and_queries_interleave_with_degradation() {
    let (clock, db) = setup();
    let db2 = db.clone();
    let writer = std::thread::spawn(move || {
        for i in 0..100 {
            db2.insert(
                "person",
                &[Value::Int(1000 + i), Value::Str("Rue de la Paix".into())],
            )
            .unwrap();
        }
    });
    for i in 0..100 {
        db.insert(
            "person",
            &[Value::Int(i), Value::Str("4 rue Jussieu".into())],
        )
        .unwrap();
    }
    writer.join().unwrap();
    clock.advance(Duration::hours(2));
    db.pump_degradation().unwrap();
    let table = db.catalog().get("person").unwrap();
    // Everything degraded exactly one step.
    let occupancy = table
        .index_occupancy(instantdb::common::ColumnId(1))
        .unwrap();
    assert_eq!(occupancy, vec![0, 200, 0, 0]);
    assert_eq!(db.stats().degrade_steps.load(Ordering::Relaxed), 200);
}

#[test]
fn background_daemon_degrades_while_foreground_inserts_and_reads() {
    // The tentpole scenario: degradation batches run as background system
    // transactions *concurrently* with foreground inserts and queries —
    // no global buffer-pool lock serializes them.
    let (clock, db) = setup();
    for i in 0..100 {
        db.insert(
            "person",
            &[Value::Int(i), Value::Str("Drienerlolaan 5".into())],
        )
        .unwrap();
    }
    let daemon = DegradationDaemon::spawn(db.clone(), std::time::Duration::from_millis(1)).unwrap();

    // Make the first batch due while foreground work keeps running.
    clock.advance(Duration::hours(2));
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let table = db.catalog().get("person").unwrap();
            let mut reads = 0usize;
            while !stop.load(Ordering::Relaxed) {
                for (tid, _) in table.scan().unwrap() {
                    if let Ok(t) = db.read_tuple(&table, tid) {
                        match &t.row[1] {
                            Value::Str(s) => assert!(
                                s == "Drienerlolaan 5" || s == "Enschede",
                                "torn value: {s}"
                            ),
                            other => panic!("unexpected {other:?}"),
                        }
                        reads += 1;
                    }
                }
            }
            reads
        })
    };
    for i in 100..200 {
        db.insert(
            "person",
            &[Value::Int(i), Value::Str("Drienerlolaan 5".into())],
        )
        .unwrap();
    }
    // The daemon must drain the 100 due transitions on its own.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while db.scheduler().fired() < 100 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().unwrap();
    let report = daemon.stop().unwrap();
    assert!(
        report.fired >= 100,
        "daemon fired the due batch: {report:?}"
    );
    assert!(
        reads > 0,
        "foreground reads progressed alongside the daemon"
    );
    let table = db.catalog().get("person").unwrap();
    for (_, t) in table.scan().unwrap() {
        match &t.row[1] {
            Value::Str(s) => assert!(s == "Drienerlolaan 5" || s == "Enschede"),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(table.live_count().unwrap(), 200);
}

#[test]
fn sharded_pool_config_reaches_the_engine() {
    let clock = MockClock::new();
    let db = Db::open(
        DbConfig {
            pool_shards: 4,
            ..DbConfig::default()
        },
        clock.shared(),
    )
    .unwrap();
    assert_eq!(db.buffer_pool().shard_count(), 4);
}

#[test]
fn system_and_user_transaction_counters() {
    let (clock, db) = setup();
    for i in 0..10 {
        db.insert(
            "person",
            &[Value::Int(i), Value::Str("4 rue Jussieu".into())],
        )
        .unwrap();
    }
    clock.advance(Duration::hours(2));
    db.pump_degradation().unwrap();
    let (user, system) = db.tx_manager().counters();
    assert!(user >= 10);
    assert!(system >= 1, "degradation batches run as system txs");
}
