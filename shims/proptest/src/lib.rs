//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the `proptest` API surface the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_filter_map`,
//! integer-range and tuple strategies, [`Just`], weighted [`prop_oneof!`],
//! [`collection::vec`], [`any`] over a small [`Arbitrary`] universe
//! (integers, `bool`, [`sample::Index`]), and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assume!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case number; to
//!   reproduce, set `PROPTEST_SHIM_SEED` to the printed seed.
//! * **Deterministic by default.** Case generation is seeded from the test
//!   name, so CI runs are reproducible without a persistence file.
//! * The number of cases comes from [`ProptestConfig`] (default 64).

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64 — small, fast, and good enough for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo bias is irrelevant for test generation purposes.
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree: strategies produce plain
/// values and there is no shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }

    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            base: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Retry budget for `prop_filter` / `prop_filter_map` before declaring the
/// strategy unsatisfiable.
const FILTER_ATTEMPTS: usize = 1000;

pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_ATTEMPTS {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

pub struct FilterMap<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.base.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.whence);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Weighted union of strategies producing the same value type; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! with zero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Helper used by `prop_oneof!` so type inference unifies the arm types.
pub fn union_arm<S>(weight: u32, strat: S) -> (u32, BoxedStrategy<S::Value>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(strat))
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Modules mirroring real proptest's layout
// ---------------------------------------------------------------------------

pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing order-preserving subsequences of `values` with a
    /// length drawn from `size`.
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: Range<usize>,
    }

    pub fn subsequence<T: Clone>(values: Vec<T>, size: Range<usize>) -> Subsequence<T> {
        assert!(
            size.end <= values.len() + 1,
            "subsequence size range exceeds source length"
        );
        Subsequence { values, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let want = self.size.start + rng.below(span) as usize;
            // Reservoir-style: walk the source once, keeping each element
            // with the probability needed to end at exactly `want` picks.
            let mut out = Vec::with_capacity(want);
            let mut remaining = self.values.len();
            let mut needed = want;
            for v in &self.values {
                if needed == 0 {
                    break;
                }
                if rng.below(remaining as u64) < needed as u64 {
                    out.push(v.clone());
                    needed -= 1;
                }
                remaining -= 1;
            }
            out
        }
    }

    /// An index into a collection of not-yet-known size; resolved against a
    /// concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            self.0 % len
        }

        /// Resolve against a slice, mirroring `proptest`'s `Index::get`.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A strategy for vectors of `elem` values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// Strategy for `Option<T>`: `Some` three times out of four, mirroring
    /// real proptest's default bias toward interesting (populated) values.
    pub fn of<S: Strategy>(elem: S) -> OptionStrategy<S> {
        OptionStrategy(elem)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// `prop::` path alias used by the prelude (`prop::sample::Index`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert!`-family failure; the test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// FNV-1a, used to derive a per-test base seed from the test name.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Drives the cases of one `proptest!` test function.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let base_seed = match std::env::var("PROPTEST_SHIM_SEED") {
            Ok(s) => s.parse::<u64>().expect("PROPTEST_SHIM_SEED must be a u64"),
            Err(_) => hash_name(name),
        };
        TestRunner { config, base_seed }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::new(self.base_seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }

    pub fn seed_for_case(&self, case: u32) -> u64 {
        self.base_seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::TestRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case {}/{} failed (seed {}): {}",
                            case,
                            runner.cases(),
                            runner.seed_for_case(case),
                            msg
                        ),
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm($weight, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm(1, $strat)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(42);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(10i64..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn oneof_and_filter_map(x in prop_oneof![
            3 => (0i64..10).prop_map(|v| v * 2),
            1 => Just(99i64),
        ], idx in any::<prop::sample::Index>()) {
            prop_assume!(x != 99);
            prop_assert!(x % 2 == 0);
            prop_assert_eq!(idx.index(7) < 7, true);
        }
    }
}
