//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the `criterion` API surface the workspace benches use — `Criterion`,
//! benchmark groups, `Bencher::iter` / `iter_batched`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up
//! followed by `sample_size` timed samples and reports the per-iteration
//! mean and min. There is no statistical analysis, outlier rejection, or
//! HTML report. The numbers are honest wall-clock medians-of-small-samples:
//! good enough for A/B comparisons inside one run, not for publication.
//! Set `CRITERION_SHIM_SAMPLES` to override the sample count globally.
//!
//! When `CRITERION_SHIM_JSON` names a file, every benchmark result is
//! also **appended** to it as one JSON object per line (NDJSON):
//! `{"id": "...", "mean_ns": N, "min_ns": N, "samples": N}` plus an
//! optional `"throughput_per_s"`. Appending lets several bench binaries
//! in one `cargo bench` run share a single artifact — CI's bench lane
//! collects it as `BENCH_wal.json` so the perf trajectory is recorded
//! per PR.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped between setup calls. The shim always runs
/// one setup per timed batch, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared throughput of one benchmark iteration, echoed in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Mean/min wall-clock per iteration, filled in by the `iter*` calls.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    fn record(&mut self, sample_times: &[Duration]) {
        let n = sample_times.len().max(1) as u32;
        let total: Duration = sample_times.iter().sum();
        let min = sample_times.iter().min().copied().unwrap_or_default();
        self.result = Some((total / n, min));
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, then `samples` timed iterations.
        black_box(routine());
        let times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        self.record(&times);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                let out = black_box(routine(input));
                let elapsed = start.elapsed();
                // Like real criterion: the routine's output is dropped
                // outside the timed window (an output owning files or
                // big buffers would otherwise bill its cleanup here).
                drop(out);
                elapsed
            })
            .collect();
        self.record(&times);
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        let times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let mut input = setup();
                let start = Instant::now();
                let out = black_box(routine(&mut input));
                let elapsed = start.elapsed();
                drop(out); // see iter_batched: output drop is untimed
                elapsed
            })
            .collect();
        self.record(&times);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// The entry point handed to `criterion_group!` targets.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: env_samples().unwrap_or(10),
        }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: env_samples().unwrap_or(10),
            throughput: None,
        }
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), self.default_samples, None, f);
        self
    }
}

/// A named collection of related benchmarks sharing throughput/sample
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; the shim happily runs fewer.
        self.samples = if env_samples().is_some() {
            self.samples
        } else {
            n.max(1)
        };
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.samples, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        run_one(&self.name, &id.into(), self.samples, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &BenchmarkId,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min)) => {
            let rate = throughput
                .map(|t| match t {
                    Throughput::Elements(n) => {
                        format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
                    }
                    Throughput::Bytes(n) => {
                        format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
                    }
                })
                .unwrap_or_default();
            println!(
                "{label:<60} mean {:>10}  min {:>10}{rate}",
                fmt_duration(mean),
                fmt_duration(min)
            );
            emit_json(&label, mean, min, samples, throughput);
        }
        None => println!("{label:<60} (no measurement: bencher never iterated)"),
    }
}

/// Append one NDJSON result line to the `CRITERION_SHIM_JSON` file, if
/// set. Labels come from bench code (no quoting hazards beyond the
/// conservative escape below); failures to write are reported but never
/// fail the bench.
fn emit_json(
    label: &str,
    mean: Duration,
    min: Duration,
    samples: usize,
    throughput: Option<Throughput>,
) {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    emit_json_to(&path, label, mean, min, samples, throughput);
}

/// Testable core of [`emit_json`]: render the NDJSON line and append it.
fn emit_json_to(
    path: &str,
    label: &str,
    mean: Duration,
    min: Duration,
    samples: usize,
    throughput: Option<Throughput>,
) {
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let rate = throughput
        .map(|t| {
            let per_s = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => {
                    n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
                }
            };
            let unit = match t {
                Throughput::Elements(_) => "elements",
                Throughput::Bytes(_) => "bytes",
            };
            format!(",\"throughput_per_s\":{per_s:.1},\"throughput_unit\":\"{unit}\"")
        })
        .unwrap_or_default();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{samples}{rate}}}\n",
        mean.as_nanos(),
        min.as_nanos(),
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion shim: cannot append to {path}: {e}");
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u32;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn json_lines_append_and_parse() {
        let path = std::env::temp_dir().join(format!(
            "criterion-shim-json-{}-{:?}.ndjson",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let p = path.to_str().unwrap();
        emit_json_to(
            p,
            "group/first/4",
            Duration::from_nanos(1500),
            Duration::from_nanos(1200),
            10,
            Some(Throughput::Elements(100)),
        );
        emit_json_to(
            p,
            "group/second \"quoted\"",
            Duration::from_micros(2),
            Duration::from_micros(1),
            3,
            None,
        );
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "one NDJSON object per result, appended");
        assert!(lines[0].starts_with("{\"id\":\"group/first/4\",\"mean_ns\":1500,"));
        assert!(lines[0].contains("\"throughput_per_s\":"));
        assert!(
            lines[1].contains("\\\"quoted\\\""),
            "quotes escaped: {}",
            lines[1]
        );
        assert!(lines[1].ends_with("\"samples\":3}"));
        std::fs::remove_file(&path).unwrap();
    }
}
