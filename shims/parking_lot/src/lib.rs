//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the exact `parking_lot` API surface the workspace uses — `Mutex`,
//! `RwLock`, `Condvar` with non-poisoning guards and `&mut guard` condvar
//! waits — on top of `std::sync`. Poisoning is deliberately swallowed
//! (`parking_lot` has none): a panicking critical section must not turn
//! every later `lock()` into a second panic. Performance characteristics
//! differ from the real crate; correctness semantics do not.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The inner std guard lives in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership of it (std's condvar
/// consumes the guard; parking_lot's borrows it mutably).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by condvar wait")
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable that borrows the [`MutexGuard`] mutably during
/// waits instead of consuming it.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

/// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
