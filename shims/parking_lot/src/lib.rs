//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the exact `parking_lot` API surface the workspace uses — `Mutex`,
//! `RwLock`, `Condvar` with non-poisoning guards and `&mut guard` condvar
//! waits — on top of `std::sync`. Poisoning is deliberately swallowed
//! (`parking_lot` has none): a panicking critical section must not turn
//! every later `lock()` into a second panic. Performance characteristics
//! differ from the real crate; correctness semantics do not.
//!
//! # Lock-rank deadlock detection (divergence from real `parking_lot`)
//!
//! On top of the stock API this shim adds a debug-only lock-order checker.
//! [`Mutex::ranked`] / [`RwLock::ranked`] construct a lock carrying a
//! numeric rank; under `cfg(debug_assertions)` every *blocking*
//! acquisition checks a thread-local stack of held ranks and panics —
//! naming both acquisition sites — if the new rank is not strictly
//! greater than every rank already held by the thread. Deadlock-prone
//! orderings thus fail loudly and deterministically in any debug test
//! that merely *executes* the two acquisitions on one thread, without
//! needing the cross-thread timing that makes real deadlocks flaky.
//!
//! Rules of the scheme (see the workspace `INVARIANTS.md` for the global
//! rank table):
//!
//! * Rank `0` (what plain [`Mutex::new`] assigns) means *unranked*:
//!   exempt from checking entirely. Reserved for locks whose discipline
//!   is not expressible as a static total order (e.g. per-page latches
//!   ordered by page identity).
//! * `try_lock`/`try_read`/`try_write` never check: a non-blocking
//!   acquisition cannot participate in a deadlock cycle. They still push
//!   the acquired rank so later blocking acquisitions see it.
//! * Equal ranks conflict: taking rank *N* while holding rank *N* panics.
//!   Two locks that can be held together must have distinct ranks.
//! * [`Condvar::wait`] keeps the mutex's rank on the stack: the lock is
//!   logically held across the wait, and the blocked thread cannot
//!   acquire anything else meanwhile.
//!
//! In release builds the rank field, the thread-local stack, and every
//! check compile away; `ranked(r, v)` is exactly `new(v)`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

#[cfg(debug_assertions)]
mod rank {
    //! Thread-local held-rank stack backing the debug lock-order checker.

    use std::cell::RefCell;
    use std::panic::Location;

    type Site = &'static Location<'static>;

    thread_local! {
        /// Ranks currently held by this thread, each with the source
        /// location that acquired it. Not necessarily sorted: guards may
        /// be dropped out of acquisition order.
        static HELD: RefCell<Vec<(u32, Site)>> = const { RefCell::new(Vec::new()) };
    }

    /// Panic if acquiring `new_rank` now would violate the strictly-
    /// increasing-rank discipline. Called *before* blocking, so a wrong
    /// ordering panics instead of deadlocking.
    pub(crate) fn check(new_rank: u32, new_site: Site) {
        if new_rank == 0 {
            return;
        }
        HELD.with(|held| {
            let held = held.borrow();
            if let Some(&(top_rank, top_site)) = held.iter().max_by_key(|(r, _)| *r) {
                if new_rank <= top_rank {
                    panic!(
                        "lock-rank violation: acquiring rank {new_rank} at {new_site} \
                         while holding rank {top_rank} acquired at {top_site}; \
                         locks must be taken in strictly increasing rank order \
                         (see INVARIANTS.md for the global rank table)"
                    );
                }
            }
        });
    }

    /// Record `rank` as held by this thread (no-op for rank 0).
    pub(crate) fn push(rank: u32, site: Site) {
        if rank == 0 {
            return;
        }
        HELD.with(|held| held.borrow_mut().push((rank, site)));
    }

    /// Drop the most recent record of `rank` (guards can unlock in any
    /// order, so this is a positional remove, not a stack pop).
    pub(crate) fn pop(rank: u32) {
        if rank == 0 {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.iter().rposition(|(r, _)| *r == rank) {
                held.remove(i);
            }
        });
    }
}

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: u32,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner std guard lives in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership of it (std's condvar
/// consumes the guard; parking_lot's borrows it mutably).
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: u32,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// An unranked mutex (rank 0): exempt from lock-order checking.
    pub const fn new(value: T) -> Self {
        Self::ranked(0, value)
    }

    /// A mutex participating in lock-order checking under `rank`.
    /// Blocking acquisitions panic in debug builds unless `rank` is
    /// strictly greater than every rank the thread already holds.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub const fn ranked(rank: u32, value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            rank,
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(debug_assertions)]
    #[inline]
    fn rank(&self) -> u32 {
        self.rank
    }

    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let site = {
            let site = std::panic::Location::caller();
            rank::check(self.rank(), site);
            site
        };
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(debug_assertions)]
        rank::push(self.rank(), site);
        MutexGuard {
            #[cfg(debug_assertions)]
            rank: self.rank(),
            inner: Some(guard),
        }
    }

    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        rank::push(self.rank(), std::panic::Location::caller());
        Some(MutexGuard {
            #[cfg(debug_assertions)]
            rank: self.rank(),
            inner: Some(guard),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by condvar wait")
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rank::pop(self.rank);
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: u32,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: u32,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: u32,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// An unranked lock (rank 0): exempt from lock-order checking.
    pub const fn new(value: T) -> Self {
        Self::ranked(0, value)
    }

    /// A lock participating in lock-order checking under `rank`; see
    /// [`Mutex::ranked`]. Read and write acquisitions check alike (two
    /// same-thread reads of one ranked lock also panic — that pattern
    /// deadlocks under a writer-priority implementation).
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub const fn ranked(rank: u32, value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            rank,
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg(debug_assertions)]
    #[inline]
    fn rank(&self) -> u32 {
        self.rank
    }

    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let site = {
            let site = std::panic::Location::caller();
            rank::check(self.rank(), site);
            site
        };
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(debug_assertions)]
        rank::push(self.rank(), site);
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            rank: self.rank(),
            inner: guard,
        }
    }

    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let site = {
            let site = std::panic::Location::caller();
            rank::check(self.rank(), site);
            site
        };
        let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(debug_assertions)]
        rank::push(self.rank(), site);
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            rank: self.rank(),
            inner: guard,
        }
    }

    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let guard = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        rank::push(self.rank(), std::panic::Location::caller());
        Some(RwLockReadGuard {
            #[cfg(debug_assertions)]
            rank: self.rank(),
            inner: guard,
        })
    }

    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let guard = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        rank::push(self.rank(), std::panic::Location::caller());
        Some(RwLockWriteGuard {
            #[cfg(debug_assertions)]
            rank: self.rank(),
            inner: guard,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        rank::pop(self.rank);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        rank::pop(self.rank);
    }
}

/// A condition variable that borrows the [`MutexGuard`] mutably during
/// waits instead of consuming it.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

/// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// The mutex's rank stays on the held stack for the duration: the
    /// lock is logically held across the wait, and this thread cannot
    /// acquire anything else while blocked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[cfg(debug_assertions)]
    mod rank_checking {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        fn panic_message(f: impl FnOnce()) -> String {
            let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a panic");
            err.downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        }

        #[test]
        fn ordered_acquisition_is_clean() {
            let low = Mutex::ranked(10, ());
            let high = Mutex::ranked(20, ());
            let a = low.lock();
            let b = high.lock();
            drop(b);
            drop(a);
            // And again in a fresh order after full release.
            let b = high.lock();
            drop(b);
            let a = low.lock();
            drop(a);
        }

        #[test]
        fn inversion_panics_with_both_sites() {
            let low = Mutex::ranked(10, ());
            let high = Mutex::ranked(20, ());
            let _held = high.lock();
            let msg = panic_message(|| {
                let _ = low.lock();
            });
            assert!(msg.contains("lock-rank violation"), "got: {msg}");
            assert!(msg.contains("rank 10"), "got: {msg}");
            assert!(msg.contains("rank 20"), "got: {msg}");
            // Both acquisition sites name this file.
            assert!(msg.matches("lib.rs").count() >= 2, "got: {msg}");
        }

        #[test]
        fn equal_ranks_conflict() {
            let a = Mutex::ranked(30, ());
            let b = Mutex::ranked(30, ());
            let _held = a.lock();
            let msg = panic_message(|| {
                let _ = b.lock();
            });
            assert!(msg.contains("lock-rank violation"), "got: {msg}");
        }

        #[test]
        fn unranked_locks_are_exempt() {
            let ranked = Mutex::ranked(40, ());
            let plain_a = Mutex::new(());
            let plain_b = Mutex::new(());
            let _r = ranked.lock();
            // Unranked after ranked, nested unranked, ranked after
            // unranked — all fine.
            let _a = plain_a.lock();
            let _b = plain_b.lock();
            let higher = Mutex::ranked(41, ());
            let _h = higher.lock();
        }

        #[test]
        fn guard_drop_unwinds_the_stack() {
            let low = Mutex::ranked(10, ());
            let high = Mutex::ranked(20, ());
            {
                let _held = high.lock();
            }
            // High released: low is acquirable again.
            let _ = low.lock();
        }

        #[test]
        fn out_of_order_release_keeps_tracking() {
            let a = Mutex::ranked(10, ());
            let b = Mutex::ranked(20, ());
            let c = Mutex::ranked(30, ());
            let ga = a.lock();
            let gb = b.lock();
            let gc = c.lock();
            drop(gb); // middle released first
            let msg = panic_message(|| {
                let _ = b.lock(); // 20 <= 30 still held
            });
            assert!(msg.contains("rank 30"), "got: {msg}");
            drop(gc);
            let _gb = b.lock(); // now only 10 held: fine
            drop(ga);
        }

        #[test]
        fn rwlock_read_and_write_both_check() {
            let low = RwLock::ranked(10, ());
            let high = RwLock::ranked(20, ());
            let _held = high.read();
            let msg = panic_message(|| {
                let _ = low.read();
            });
            assert!(msg.contains("lock-rank violation"), "got: {msg}");
            drop(_held);
            let _held = high.write();
            let msg = panic_message(|| {
                let _ = low.write();
            });
            assert!(msg.contains("lock-rank violation"), "got: {msg}");
        }

        #[test]
        fn try_lock_does_not_check_but_is_tracked() {
            let low = Mutex::ranked(10, ());
            let high = Mutex::ranked(20, ());
            let _held = high.lock();
            // Opportunistic grab below the held rank: allowed.
            let g = low.try_lock().expect("uncontended");
            drop(g);
            // But while a try-acquired rank is held, blocking
            // acquisitions still see it.
            let g = low.try_lock().expect("uncontended");
            let mid = Mutex::ranked(15, ());
            let msg = panic_message(|| {
                let _ = mid.lock(); // 15 <= 20 held
            });
            assert!(msg.contains("lock-rank violation"), "got: {msg}");
            drop(g);
        }

        #[test]
        fn condvar_wait_keeps_rank_held() {
            let pair = Arc::new((Mutex::ranked(10, false), Condvar::new()));
            let pair2 = pair.clone();
            let t = std::thread::spawn(move || {
                let (lock, cv) = &*pair2;
                let mut done = lock.lock();
                while !*done {
                    cv.wait(&mut done);
                }
                // Still holding rank 10 after the wait: higher is fine,
                // and the guard pops exactly once on drop.
                drop(done);
                let _ = lock.lock();
            });
            {
                let (lock, cv) = &*pair;
                *lock.lock() = true;
                cv.notify_all();
            }
            t.join().unwrap();
        }

        #[test]
        fn ranks_are_per_thread() {
            let high = Arc::new(Mutex::ranked(20, ()));
            let low = Arc::new(Mutex::ranked(10, ()));
            let _held = high.lock();
            let low2 = low.clone();
            // Another thread holds nothing: its rank-10 acquisition is
            // clean even while this thread holds rank 20.
            std::thread::spawn(move || {
                let _ = low2.lock();
            })
            .join()
            .unwrap();
        }
    }
}
